"""External-memory triangle listing (the paper's forward pointer).

Sections 2.3 and 8 point at [17] ("On Efficient External-Memory
Triangle Listing"): when ``G`` does not fit in RAM, the oriented graph
is split into vertex partitions, partition pairs are co-loaded, and the
choice between E1 and E2 "requires modeling I/O complexity under a
specific graph-partitioning scheme". The paper leaves that modeling to
future work; this subpackage implements the substrate it presupposes --
a label-range partitioner and an out-of-core E1 with exact I/O
accounting -- so the CPU-cost results of the main paper can be combined
with measured I/O volume.

The partitioning scheme is the natural one for acyclic orientations:
``k`` contiguous label ranges; every triangle ``x < y < z`` has its
three corners in at most three ranges, and streaming each source
partition against the (smaller-labeled) candidate partitions visits
every directed edge a bounded number of times.
"""

from repro.external.partition import (
    LabelRangePartitioner,
    Partition,
    plan_partitions,
)
from repro.external.ooc_listing import (
    IOCounter,
    external_e1,
    external_e2,
)

__all__ = [
    "LabelRangePartitioner",
    "Partition",
    "IOCounter",
    "external_e1",
    "external_e2",
    "plan_partitions",
]
