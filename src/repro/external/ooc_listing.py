"""Out-of-core E1 with exact I/O accounting.

Strategy: stream each *source* partition ``P_s`` (holding the pivots
``z``), and against it load each *candidate* partition ``P_c`` with
``c <= s`` one at a time. While ``(P_s, P_c)`` is co-resident, every
directed edge ``z -> y`` with ``z in P_s`` and ``y in P_c`` is
processed exactly once: the local window (the prefix of ``N+(z)`` below
``y``) lives in the already-loaded source block, the remote list
``N+(y)`` in the candidate block. Each triangle ``x < y < z`` is thus
listed exactly once -- at the pair ``(partition(z), partition(y))`` --
and CPU ops equal the in-memory E1's to the operation.

I/O volume is the classic ``O(k m)``: candidate ``c`` is re-loaded for
every source ``s >= c``, so total bytes ~ ``(k + 1)/2`` times the graph
size; the measured counter exposes the tradeoff against memory (only
two partitions are ever co-resident).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.external.partition import LabelRangePartitioner
from repro.listing.base import ListingResult, intersect_sorted
from repro.obs import memory as _memory


@dataclass
class IOCounter:
    """Tally of simulated external-memory traffic."""

    loads: int = 0
    bytes_read: int = 0
    evictions: int = 0
    per_partition_loads: dict = field(default_factory=dict)

    def record_load(self, index: int, nbytes: int) -> None:
        """Charge one partition load of ``nbytes`` to the tally."""
        self.loads += 1
        self.bytes_read += nbytes
        self.per_partition_loads[index] = (
            self.per_partition_loads.get(index, 0) + 1)

    def record_eviction(self) -> None:
        """Note one partition eviction (memory-pressure event)."""
        self.evictions += 1


def external_e1(oriented, k: int,
                collect: bool = True) -> tuple[ListingResult, IOCounter]:
    """Run E1 out-of-core over ``k`` label-range partitions.

    Returns ``(result, io)``; ``result.ops`` matches the in-memory E1
    exactly (tests assert equality), and ``io`` reports the partition
    traffic. ``k = 1`` degenerates to the in-memory algorithm with a
    single load.
    """
    partitioner = LabelRangePartitioner(oriented, k)
    io = IOCounter()
    ops = 0
    comparisons = 0
    triangles = [] if collect else 0

    for s in range(partitioner.num_partitions):
        source = partitioner.load(s)
        io.record_load(s, source.byte_size())
        for c in range(s + 1):
            _memory.check_budget("out-of-core E1 partition loop")
            if c == s:
                candidate = source  # already resident
            else:
                candidate = partitioner.load(c)
                io.record_load(c, candidate.byte_size())
            for z in range(source.lo, source.hi):
                outs = source.out_neighbors(z).tolist()
                for q, y in enumerate(outs):
                    if not candidate.lo <= y < candidate.hi:
                        continue  # y's list lives in another partition
                    local = outs[:q]
                    remote = candidate.out_neighbors(y).tolist()
                    ops += len(local) + len(remote)
                    matches, ncmp = intersect_sorted(local, remote)
                    comparisons += ncmp
                    if collect:
                        triangles.extend((x, y, z) for x in matches)
                    else:
                        triangles += len(matches)
            if c != s:
                partitioner.evict(c)
                io.record_eviction()
        partitioner.evict(s)
        io.record_eviction()

    result = ListingResult(
        method=f"E1/external(k={partitioner.num_partitions})",
        count=len(triangles) if collect else triangles,
        triangles=triangles if collect else None,
        ops=ops,
        comparisons=comparisons,
        hash_inserts=0,
        n=oriented.n,
    )
    return result, io


def external_e2(oriented, k: int,
                collect: bool = True) -> tuple[ListingResult, IOCounter]:
    """Run E2 out-of-core over ``k`` label-range partitions.

    E2 visits ``y`` and intersects ``N+(y)`` (local) with the prefix of
    ``N+(z)`` below ``y`` for each in-neighbor ``z > y``. Out-of-core,
    the source partition holds the ``y`` range and the candidate
    partitions hold the ``z`` ranges -- which live at *larger* labels,
    so the pair loop runs over ``c >= s`` instead of E1's ``c <= s``.
    The in-lists of the source are needed to find the ``z`` partners;
    their byte volume is charged to the source load.

    This is exactly the E1-vs-E2 contrast the paper defers to [17]:
    same CPU ops (Table 1 gives both T1 + T2), mirrored partition
    traffic. Comparing the two ``IOCounter`` outputs under a given
    partitioning is the experiment section 2.3 calls for.
    """
    partitioner = LabelRangePartitioner(oriented, k)
    io = IOCounter()
    ops = 0
    comparisons = 0
    triangles = [] if collect else 0

    for s in range(partitioner.num_partitions):
        source = partitioner.load(s)
        # the source also streams its in-lists (the z pointers)
        in_bytes = 8 * int(np.sum(
            oriented.in_degrees[source.lo:source.hi]))
        io.record_load(s, source.byte_size() + in_bytes)
        for c in range(s, partitioner.num_partitions):
            _memory.check_budget("out-of-core E2 partition loop")
            if c == s:
                candidate = source
            else:
                candidate = partitioner.load(c)
                io.record_load(c, candidate.byte_size())
            for y in range(source.lo, source.hi):
                local_full = source.out_neighbors(y).tolist()
                for z in oriented.in_neighbors(y).tolist():
                    if not candidate.lo <= z < candidate.hi:
                        continue
                    z_outs = candidate.out_neighbors(z).tolist()
                    remote = z_outs[:_count_below(z_outs, y)]
                    ops += len(local_full) + len(remote)
                    matches, ncmp = intersect_sorted(local_full, remote)
                    comparisons += ncmp
                    if collect:
                        triangles.extend((x, y, z) for x in matches)
                    else:
                        triangles += len(matches)
            if c != s:
                partitioner.evict(c)
                io.record_eviction()
        partitioner.evict(s)
        io.record_eviction()

    result = ListingResult(
        method=f"E2/external(k={partitioner.num_partitions})",
        count=len(triangles) if collect else triangles,
        triangles=triangles if collect else None,
        ops=ops,
        comparisons=comparisons,
        hash_inserts=0,
        n=oriented.n,
    )
    return result, io


def _count_below(sorted_list: list, bound: int) -> int:
    lo, hi = 0, len(sorted_list)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_list[mid] < bound:
            lo = mid + 1
        else:
            hi = mid
    return lo
