"""Delta-varint compressed adjacency lists (section 2.4's aside).

The paper remarks that "binary search may be impossible altogether in
certain graphs (e.g., with compressed neighbor lists)": compressed
adjacency admits only sequential decoding, which rules out the
boundary-search shortcuts of partially preprocessed graphs -- and makes
the full relabel+orient pipeline (whose windows are all prefixes known
in advance or discovered *during* the sequential scan) the only one
that keeps SEI implementable at its Table 1 cost.

This module provides that substrate: each sorted neighbor list is
stored as varint-encoded deltas (the standard WebGraph-style scheme),
a :class:`CompressedOrientedGraph` mirroring the
:class:`~repro.graphs.digraph.OrientedGraph` interface via sequential
decoding only, and a streaming E1 whose operation count matches the
uncompressed lister exactly.
"""

from __future__ import annotations

import numpy as np

from repro.listing.base import ListingResult
from repro.obs import memory as _memory


def encode_varint_deltas(sorted_values) -> bytes:
    """Encode an ascending int sequence as varint deltas.

    First value is stored as-is, the rest as gaps minus one (gaps are
    at least 1 in a strictly increasing list), each LEB128-encoded.
    """
    out = bytearray()
    previous = -1
    for value in sorted_values:
        value = int(value)
        if value <= previous:
            raise ValueError("input must be strictly increasing")
        delta = value - previous - 1
        previous = value
        while True:
            byte = delta & 0x7F
            delta >>= 7
            if delta:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def decode_varint_deltas(blob: bytes) -> list[int]:
    """Decode a full list (tests / non-streaming use)."""
    return list(iter_varint_deltas(blob))


def iter_varint_deltas(blob: bytes):
    """Sequentially decode values -- the only access mode compression
    allows, which is the whole point of section 2.4's remark."""
    value = -1
    shift = 0
    delta = 0
    for byte in blob:
        delta |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            continue
        value += delta + 1
        yield value
        delta = 0
        shift = 0
    if shift:
        raise ValueError("truncated varint stream")


class CompressedOrientedGraph:
    """An oriented, relabeled graph with varint-compressed lists.

    Built from an :class:`~repro.graphs.digraph.OrientedGraph`; exposes
    per-node sequential iterators over out/in lists plus the degree
    arrays (degrees are kept uncompressed -- they are ``O(n)`` ints and
    every cost formula needs them).
    """

    def __init__(self, oriented):
        self.n = oriented.n
        self.m = oriented.m
        self.out_degrees = oriented.out_degrees.copy()
        self.in_degrees = oriented.in_degrees.copy()
        self.degrees = oriented.degrees.copy()
        self._out_blobs = [encode_varint_deltas(oriented.out_neighbors(i))
                           for i in range(self.n)]
        self._in_blobs = [encode_varint_deltas(oriented.in_neighbors(i))
                          for i in range(self.n)]
        if _memory.is_enabled():
            token = _memory.check_in("graph.compressed",
                                     nbytes=self.compressed_bytes(),
                                     dtype="varint")
            if token is not None:
                import weakref
                weakref.finalize(self, _memory.check_out, token)

    def iter_out(self, i: int):
        """Sequentially decode ``N+(i)`` (ascending)."""
        return iter_varint_deltas(self._out_blobs[i])

    def iter_in(self, i: int):
        """Sequentially decode ``N-(i)`` (ascending)."""
        return iter_varint_deltas(self._in_blobs[i])

    def compressed_bytes(self) -> int:
        """Total payload size, for compression-ratio reporting."""
        return (sum(len(b) for b in self._out_blobs)
                + sum(len(b) for b in self._in_blobs))

    def uncompressed_bytes(self, width: int = 8) -> int:
        """Size of the raw CSR payload at ``width`` bytes per ID."""
        return 2 * self.m * width

    def __repr__(self) -> str:
        return (f"CompressedOrientedGraph(n={self.n}, m={self.m}, "
                f"{self.compressed_bytes()} bytes)")


def run_e1_compressed(compressed: CompressedOrientedGraph,
                      collect: bool = True) -> ListingResult:
    """E1 over compressed lists, sequential decoding only.

    For each ``z`` the out-list is decoded once into a buffer (the
    local side is re-scanned per partner, exactly like the uncompressed
    algorithm's prefix windows); each partner's out-list is decoded and
    merged on the fly. Nominal ``ops`` match the uncompressed E1 --
    compression changes the constant factor, never the count.
    """
    ops = 0
    comparisons = 0
    triangles = [] if collect else 0
    for z in range(compressed.n):
        outs = list(compressed.iter_out(z))
        for q, y in enumerate(outs):
            local = outs[:q]
            ops += len(local) + int(compressed.out_degrees[y])
            matches, ncmp = _merge_stream(local, compressed.iter_out(y))
            comparisons += ncmp
            if collect:
                triangles.extend((x, y, z) for x in matches)
            else:
                triangles += len(matches)
    return ListingResult(
        method="E1/compressed",
        count=len(triangles) if collect else triangles,
        triangles=triangles if collect else None,
        ops=ops,
        comparisons=comparisons,
        hash_inserts=0,
        n=compressed.n,
    )


def _merge_stream(local: list, remote_iter):
    """Two-pointer merge of a list against a streaming iterator."""
    matches = []
    comparisons = 0
    i = 0
    la = len(local)
    if la == 0:
        return matches, comparisons
    for value in remote_iter:
        while i < la and local[i] < value:
            comparisons += 1
            i += 1
        if i == la:
            break
        comparisons += 1
        if local[i] == value:
            matches.append(value)
            i += 1
    return matches, comparisons
