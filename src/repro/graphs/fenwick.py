"""Fenwick (binary indexed) tree for proportional sampling.

Section 7.2 notes that neighbor selection proportional to *residual
degree* can be done in ``n log n`` total time "using interval trees that
record the residual probability mass of degree on both sides of each
node". A Fenwick tree over the residual-degree array provides exactly
that: point updates and prefix sums in ``O(log n)``, and sampling a node
with probability proportional to its weight by descending the implicit
tree in ``O(log n)``.
"""

from __future__ import annotations

import numpy as np


class FenwickTree:
    """Prefix-sum tree over ``n`` non-negative integer/float weights.

    Supports the three operations the residual-degree generator needs:

    * ``add(i, delta)`` -- point update in ``O(log n)``;
    * ``prefix_sum(i)`` -- ``sum(w[0..i])`` in ``O(log n)``;
    * ``sample(target)`` -- the smallest index ``i`` whose prefix sum
      exceeds ``target``, i.e. a draw proportional to the weights when
      ``target`` is uniform on ``[0, total)``; ``O(log n)``.
    """

    def __init__(self, weights):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValueError("weights must be one-dimensional")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        self.n = weights.size
        # classic O(n) construction: tree[i] accumulates its child ranges
        self._tree = np.zeros(self.n + 1, dtype=np.float64)
        self._tree[1:] = weights
        for i in range(1, self.n + 1):
            parent = i + (i & -i)
            if parent <= self.n:
                self._tree[parent] += self._tree[i]
        self._total = float(weights.sum())
        # log2 rounded up, for the binary-lifting descent in sample()
        self._log = max(self.n.bit_length() - 1, 0)
        if (1 << self._log) < self.n:
            self._log += 1

    @property
    def total(self) -> float:
        """Sum of all weights (maintained incrementally)."""
        return self._total

    def add(self, index: int, delta: float) -> None:
        """Add ``delta`` to the weight at ``index`` (0-based)."""
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        self._total += delta
        i = index + 1
        while i <= self.n:
            self._tree[i] += delta
            i += i & -i

    def prefix_sum(self, index: int) -> float:
        """Sum of weights at positions ``0..index`` inclusive."""
        if index < 0:
            return 0.0
        i = min(index + 1, self.n)
        total = 0.0
        while i > 0:
            total += self._tree[i]
            i -= i & -i
        return total

    def get(self, index: int) -> float:
        """Current weight at ``index``."""
        return self.prefix_sum(index) - self.prefix_sum(index - 1)

    def sample(self, target: float) -> int:
        """Smallest 0-based index whose inclusive prefix sum > ``target``.

        With ``target`` uniform on ``[0, total)`` this samples index ``i``
        with probability ``w[i] / total``. Positions with zero weight are
        never returned.
        """
        if not 0.0 <= target < self._total:
            raise ValueError(
                f"target {target} outside [0, {self._total})")
        pos = 0
        remaining = target
        step = 1 << self._log
        while step > 0:
            nxt = pos + step
            if nxt <= self.n and self._tree[nxt] <= remaining:
                remaining -= self._tree[nxt]
                pos = nxt
            step >>= 1
        return pos  # pos is 0-based because tree is 1-based

    def to_array(self) -> np.ndarray:
        """Materialize the current weights (for tests/debugging)."""
        return np.array([self.get(i) for i in range(self.n)])

    def __len__(self) -> int:
        return self.n
