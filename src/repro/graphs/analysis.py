"""Structural graph analysis supporting the paper's complexity claims.

Section 1.1 frames the classic bound on Chiba-Nishizeki as ``O(delta m)``
with ``delta`` the *arboricity* -- "an elusive quantity, only known to be
O(1) for trees and O(sqrt(m)) otherwise". This module provides the
measurable proxies:

* exact degeneracy (via smallest-last) and the classic sandwich
  ``ceil((degeneracy + 1) / 2) <= arboricity <= degeneracy``;
* the Nash-Williams lower bound from subgraph density;
* clustering / triangle statistics used to sanity-check generated graphs
  against configuration-model expectations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.orientations.degenerate import smallest_last_order


def degeneracy(graph) -> int:
    """The graph's degeneracy (= smallest-last max residual degree)."""
    __, k = smallest_last_order(graph)
    return k


def arboricity_bounds(graph) -> tuple[int, int]:
    """``(lower, upper)`` bounds on the arboricity ``delta``.

    Upper: degeneracy (every k-degenerate graph splits into k forests).
    Lower: the max of the global Nash-Williams density
    ``ceil(m / (n - 1))`` and ``ceil((degeneracy + 1) / 2)`` (the
    densest-subgraph certificate provided by the degeneracy core).
    """
    if graph.n <= 1:
        return 0, 0
    k = degeneracy(graph)
    density_bound = math.ceil(graph.m / (graph.n - 1)) if graph.m else 0
    lower = max(density_bound, math.ceil((k + 1) / 2) if k else 0)
    return lower, max(k, lower)


def triangle_count(graph) -> int:
    """Exact triangle count via a descending-degree E2-style merge."""
    from repro.listing.api import count_triangles
    from repro.orientations.permutations import DescendingDegree
    from repro.orientations.relabel import orient
    return count_triangles(orient(graph, DescendingDegree()))


def triangle_count_sparse(graph) -> int:
    """Exact triangle count via sparse matrix algebra (C-speed path).

    With ``L`` the strictly lower-triangular adjacency (every edge
    oriented high-ID -> low-ID), ``sum((L @ L) * L)`` counts each
    triangle exactly once -- the matrix view of an oriented edge
    iterator. Orders of magnitude faster than the instrumented Python
    listers for large graphs; cross-validated against them in tests.
    """
    from scipy import sparse
    if graph.m == 0:
        return 0
    edges = graph.edges  # canonical (lo, hi)
    data = np.ones(graph.m, dtype=np.int64)
    lower = sparse.csr_matrix(
        (data, (edges[:, 1], edges[:, 0])), shape=(graph.n, graph.n))
    paths = lower @ lower
    return int(paths.multiply(lower).sum())


def global_clustering_coefficient(graph) -> float:
    """``3 * triangles / open wedges`` (transitivity)."""
    d = graph.degrees.astype(float)
    wedges = float(np.sum(d * (d - 1.0)) / 2.0)
    if wedges == 0.0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def expected_triangles_configuration_model(degrees) -> float:
    """First-order triangle expectation in the configuration model.

    ``E[T] ~ (E-hat[d(d-1)])^3 / (6 (E-hat[d] n)^3) * n^3``
    = ``(sum d(d-1))^3 / (6 (sum d)^3)`` -- the standard moment formula
    for graphs with given degrees [31]. Accurate in the AMRC regime;
    generated graphs should land near it, which the tests verify.
    """
    d = np.asarray(degrees, dtype=float)
    s1 = float(np.sum(d))
    s2 = float(np.sum(d * (d - 1.0)))
    if s1 == 0.0:
        return 0.0
    return s2**3 / (6.0 * s1**3)


def wedge_count(graph) -> int:
    """Number of open two-paths ``sum d(d-1)/2`` -- the Theta(sum d^2)
    candidate-edge bound of un-oriented iterators (section 1.1)."""
    d = graph.degrees.astype(np.int64)
    return int(np.sum(d * (d - 1)) // 2)


def empirical_spread_sample(graph, samples: int,
                            rng: np.random.Generator) -> np.ndarray:
    """Degrees seen by random edge endpoints -- Prop. 5 on a graph.

    Draw ``samples`` uniform edges, pick a uniform endpoint of each,
    and return its degree. As ``n`` grows this sample follows the
    spread distribution ``J`` (the inspection paradox), which the tests
    verify against :class:`~repro.core.spread.SpreadDistribution` built
    from the same graph's degree histogram.
    """
    if graph.m == 0:
        raise ValueError("graph has no edges")
    if samples < 1:
        raise ValueError("need at least one sample")
    edge_idx = rng.integers(graph.m, size=samples)
    side = rng.integers(2, size=samples)
    endpoints = graph.edges[edge_idx, side]
    return graph.degrees[endpoints].astype(np.int64)


def degree_assortativity(graph) -> float:
    """Pearson correlation of endpoint degrees over the edges.

    The configuration-model family the paper builds on is degree-
    neutral in the limit (assortativity -> 0 up to finite-size
    structural cut-off effects); a strongly non-zero value in a
    generated graph would signal a biased sampler. Returns 0.0 for
    degenerate cases (no edges or constant endpoint degrees).
    """
    if graph.m == 0:
        return 0.0
    edges = graph.edges
    d = graph.degrees.astype(float)
    # both edge directions, as the standard definition requires
    a = np.concatenate([d[edges[:, 0]], d[edges[:, 1]]])
    b = np.concatenate([d[edges[:, 1]], d[edges[:, 0]]])
    if np.std(a) == 0.0 or np.std(b) == 0.0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
