"""Connected components and cleanup utilities for real edge lists.

Real-world dumps (the section 7.5 workflow) routinely contain many
small components; listing triangles component-by-component or on the
giant component only is standard practice. Union-find keeps this
near-linear.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def connected_components(graph) -> np.ndarray:
    """Component ID per node (0-based, dense), via union-find."""
    parent = np.arange(graph.n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for u, v in graph.edges:
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[ru] = rv
    roots = np.array([find(i) for i in range(graph.n)], dtype=np.int64)
    __, dense = np.unique(roots, return_inverse=True)
    return dense.astype(np.int64)


def component_sizes(graph) -> np.ndarray:
    """Sizes of all components, descending."""
    labels = connected_components(graph)
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.bincount(labels))[::-1].astype(np.int64)


def largest_component(graph) -> tuple[Graph, np.ndarray]:
    """Extract the giant component as its own graph.

    Returns ``(subgraph, node_map)`` where ``node_map[i]`` is the
    original ID of the subgraph's node ``i``. Triangles are preserved
    (a triangle never spans components).
    """
    if graph.n == 0:
        return Graph(0, []), np.empty(0, dtype=np.int64)
    labels = connected_components(graph)
    giant = int(np.argmax(np.bincount(labels)))
    keep = np.flatnonzero(labels == giant)
    return induced_subgraph(graph, keep)


def induced_subgraph(graph, nodes) -> tuple[Graph, np.ndarray]:
    """The subgraph induced by ``nodes`` (relabeled densely).

    Returns ``(subgraph, node_map)`` with ``node_map`` mapping new IDs
    back to original ones.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size and (nodes.min() < 0 or nodes.max() >= graph.n):
        raise ValueError("node ID out of range")
    new_id = -np.ones(graph.n, dtype=np.int64)
    new_id[nodes] = np.arange(nodes.size)
    edges = graph.edges
    if edges.size:
        mask = (new_id[edges[:, 0]] >= 0) & (new_id[edges[:, 1]] >= 0)
        sub_edges = np.column_stack([new_id[edges[mask, 0]],
                                     new_id[edges[mask, 1]]])
    else:
        sub_edges = np.empty((0, 2), dtype=np.int64)
    return Graph(nodes.size, sub_edges), nodes
