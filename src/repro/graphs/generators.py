"""Random graphs realizing a prescribed degree sequence (section 7.2).

Two generators:

* :func:`configuration_model` -- classic stub matching [8], [30] followed
  by removal of self-loops and duplicate edges. Simple to reason about,
  but the removal step shrinks realized degrees, which the paper observes
  becomes significant for Pareto ``alpha < 2`` under linear truncation
  (simulations then stop matching ``E[X_i | D_n]``).
* :func:`residual_degree_model` -- the paper's remedy, a variation of
  Blitzstein-Diaconis [11]: each node's stubs are wired to partners
  chosen *in proportion to their residual degree*, excluding the node
  itself and its already-attached neighbors. Proportional selection uses
  a Fenwick tree (``O(log n)`` per draw, ``O(m log n)`` total). When the
  tail of the process gets stuck (every remaining stub-holder is already
  a neighbor), leftover stubs are resolved by double-edge swaps that
  preserve all other degrees, so the output realizes the requested
  sequence *exactly* -- matching the paper's "with the exception of
  possibly one last edge" guarantee (which we handle upstream by making
  the degree sum even).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.fenwick import FenwickTree
from repro.graphs.graph import Graph
from repro.obs import metrics as _metrics
from repro.obs.spans import span


def configuration_model(degrees, rng: np.random.Generator,
                        simplify: bool = True) -> Graph:
    """Stub-matching configuration model.

    Places ``d_i`` copies of node ``i`` in an array, shuffles, and pairs
    consecutive stubs. With ``simplify=True`` (the default), self-loops
    and duplicate edges are dropped, so realized degrees may fall short
    of the request -- this is the deficit discussed in section 7.2.

    Raises ``ValueError`` when the degree sum is odd (pair off the stubs
    first, e.g. via ``sample_degree_sequence(..., ensure_even_sum=True)``).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    _validate_degrees(degrees)
    if not simplify:
        raise ValueError(
            "multigraph output is not supported; the library operates on "
            "simple graphs only (pass simplify=True)")
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    keys = lo * np.int64(degrees.size) + hi
    __, unique_idx = np.unique(keys, return_index=True)
    edges = np.column_stack([lo[unique_idx], hi[unique_idx]])
    if _metrics.is_enabled():
        # stub pairs dropped as self-loops or duplicates: the degree
        # deficit discussed in section 7.2
        _metrics.inc("generator.rejections",
                     int(pairs.shape[0] - edges.shape[0]))
    return Graph(degrees.size, edges)


def residual_degree_model(degrees, rng: np.random.Generator,
                          max_swap_attempts: int = 10_000) -> Graph:
    """Realize ``degrees`` exactly via residual-proportional wiring.

    Nodes are processed in descending degree (hubs first, where the
    simple-graph constraint binds hardest). For the node ``i`` being
    wired, each remaining stub picks a partner ``j`` with probability
    proportional to the partner's residual degree among the *allowed*
    candidates -- everyone except ``i`` and nodes already adjacent to
    ``i``. Exclusion is implemented by temporarily zeroing those weights
    in the Fenwick tree and restoring them after ``i`` is fully wired.

    If at some point no candidate remains while stubs are still open,
    the leftovers are resolved afterwards with degree-preserving
    double-edge swaps.

    Raises ``ValueError`` for an odd degree sum or a degree ``>= n``, and
    ``RuntimeError`` if swap repair cannot finish within
    ``max_swap_attempts`` draws (practically only for near-complete or
    otherwise non-graphic sequences).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    _validate_degrees(degrees)
    n = degrees.size
    if degrees.max(initial=0) * 4 > n:
        # dense hubs are exactly where non-graphic sequences hide and
        # where repair can dead-end; fail fast with a clear message
        from repro.graphs.degree import erdos_gallai_graphical
        if not erdos_gallai_graphical(degrees):
            raise ValueError(
                "degree sequence is not graphic (Erdos-Gallai fails); "
                "sample with ensure_graphical=True or repair it first")
    residual = degrees.astype(np.float64).copy()
    tree = FenwickTree(residual)
    adjacency: list[set] = [set() for __ in range(n)]
    edges: list[tuple[int, int]] = []

    order = np.argsort(degrees)[::-1]
    for i in order:
        i = int(i)
        if residual[i] <= 0:
            continue
        # exclude i itself and current neighbors for the whole wiring run;
        # excluded nodes have their tree weight zeroed and are restored to
        # their (possibly updated) residual once i is fully wired
        excluded: set[int] = {i}
        _zero_weight(tree, i)
        for j in adjacency[i]:
            _zero_weight(tree, j)
            excluded.add(j)
        while residual[i] > 0:
            total = tree.total
            if total <= 1e-9:
                break  # stuck: repaired by swaps below
            j = tree.sample(rng.random() * total)
            _add_edge(i, j, adjacency, edges, residual)
            _zero_weight(tree, j)
            excluded.add(j)
        for node in excluded:
            if residual[node] > 0:
                tree.add(node, residual[node])
    # at this point every excluded weight has been restored where the
    # residual is still positive; repair any leftovers
    leftovers = _leftover_stubs(residual)
    if leftovers:
        if _metrics.is_enabled():
            # stubs the residual process could not place directly;
            # each is resolved by a degree-preserving swap below
            _metrics.inc("generator.swap_repaired_stubs", len(leftovers))
        try:
            _swap_repair(leftovers, adjacency, edges, rng,
                         max_swap_attempts)
        except RuntimeError:
            # pathological hub traps (every edge touches the stuck
            # node's neighborhood) are rare but real for alpha near 1
            # under linear truncation; fall back to a guaranteed
            # construction: Havel-Hakimi + double-edge-swap mixing
            _metrics.inc("generator.havel_hakimi_fallbacks")
            return havel_hakimi_graph(degrees, rng)
    return Graph(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))


def havel_hakimi_graph(degrees, rng: np.random.Generator | None = None,
                       mixing_swaps_per_edge: int = 5) -> Graph:
    """Deterministic Havel-Hakimi realization + edge-swap randomization.

    Always succeeds on a graphic sequence (and raises ``ValueError``
    otherwise). The deterministic construction is heavily assortative,
    so the result is mixed with random degree-preserving double-edge
    swaps; with enough swaps this approaches the uniform distribution
    over realizations, which is what the paper's edge-probability model
    (10) assumes.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    _validate_degrees(degrees)
    n = degrees.size
    import heapq
    heap = [(-int(d), v) for v, d in enumerate(degrees) if d > 0]
    heapq.heapify(heap)
    adjacency: list[set] = [set() for __ in range(n)]
    edges: list[tuple[int, int]] = []
    while heap:
        neg_d, v = heapq.heappop(heap)
        d = -neg_d
        if d == 0:
            continue
        if d > len(heap):
            raise ValueError("degree sequence is not graphic")
        partners = [heapq.heappop(heap) for __ in range(d)]
        for neg_du, u in partners:
            adjacency[v].add(u)
            adjacency[u].add(v)
            edges.append((v, u) if v < u else (u, v))
        for neg_du, u in partners:
            if -neg_du - 1 > 0:
                heapq.heappush(heap, (neg_du + 1, u))
    if rng is not None and edges:
        _shake(adjacency, edges, rng,
               rounds=mixing_swaps_per_edge * len(edges))
    return Graph(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))


def generate_graph(degrees, rng: np.random.Generator,
                   method: str = "residual") -> Graph:
    """Dispatch to a named generator: ``"residual"`` or ``"configuration"``.

    ``"residual"`` (default) realizes the sequence exactly;
    ``"configuration"`` is the classic stub matcher with simplification.
    """
    with span("generate", method=method) as sp:
        if method == "residual":
            graph = residual_degree_model(degrees, rng)
        elif method == "configuration":
            graph = configuration_model(degrees, rng)
        else:
            raise ValueError(
                f"unknown generator {method!r}; use 'residual' or "
                f"'configuration'")
        sp.annotate(n=graph.n, m=graph.m)
    return graph


def _validate_degrees(degrees: np.ndarray) -> None:
    if degrees.ndim != 1 or degrees.size == 0:
        raise ValueError("degree sequence must be a non-empty 1-D array")
    if degrees.min() < 0:
        raise ValueError("degrees must be non-negative")
    if degrees.max() >= degrees.size:
        raise ValueError(
            f"degree {int(degrees.max())} impossible in a simple graph "
            f"with n={degrees.size}")
    if int(degrees.sum()) % 2 == 1:
        raise ValueError("degree sum must be even to realize a graph")


def _zero_weight(tree: FenwickTree, node: int) -> None:
    """Zero ``node``'s current weight in the sampling tree."""
    current = tree.get(node)
    if current > 0:
        tree.add(node, -current)


def _add_edge(i: int, j: int, adjacency: list, edges: list,
              residual: np.ndarray) -> None:
    adjacency[i].add(j)
    adjacency[j].add(i)
    edges.append((i, j) if i < j else (j, i))
    residual[i] -= 1
    residual[j] -= 1
    # the tree weights of both endpoints are handled by the caller: i is
    # excluded for its whole wiring run, j is zeroed right after this call
    # and restored to its updated residual at the end of the run


def _leftover_stubs(residual: np.ndarray) -> list[int]:
    """Expand positive residuals into a flat stub list."""
    stubs: list[int] = []
    for node in np.flatnonzero(residual > 0.5):
        stubs.extend([int(node)] * int(round(residual[node])))
    return stubs


def _swap_repair(stubs: list[int], adjacency: list, edges: list,
                 rng: np.random.Generator, max_attempts: int) -> None:
    """Place leftover stubs via degree-preserving double-edge swaps.

    For a stub pair ``(a, b)``: if the edge ``(a, b)`` can be added
    directly, add it. Otherwise find an existing edge ``(u, v)`` with
    ``u`` not adjacent to ``a`` and ``v`` not adjacent to ``b`` (and
    ``{u, v}`` disjoint from ``{a, b}``), remove it, and add ``(a, u)``
    and ``(b, v)`` -- all degrees other than ``a``'s and ``b``'s are
    preserved, theirs each gain one.

    The edge is located by rejection sampling first (fast on typical
    graphs), then by a deterministic scan over the non-neighbors of
    ``a`` (needed when ``a`` is a near-spanning hub and random edges
    almost surely touch its neighborhood). If even the scan fails, the
    graph is shaken with random degree-preserving swaps and the search
    retried, which walks the realization space until the move becomes
    available.
    """
    if len(stubs) % 2 == 1:
        raise RuntimeError("internal error: odd number of leftover stubs")
    rng.shuffle(stubs)
    while stubs:
        a = stubs.pop()
        b = stubs.pop()
        if a != b and b not in adjacency[a]:
            adjacency[a].add(b)
            adjacency[b].add(a)
            edges.append((a, b) if a < b else (b, a))
            continue
        if not edges:
            raise RuntimeError(
                "swap repair impossible: no edges available to rewire")
        placed = False
        for shake_round in range(6):
            found = (_find_swap_random(a, b, adjacency, edges, rng,
                                       attempts=2000)
                     or _find_swap_scan(a, b, adjacency, edges))
            if found is None and a != b:
                # the roles of a and b are not symmetric in the scan
                found = _find_swap_scan(b, a, adjacency, edges)
                if found is not None:
                    a, b = b, a
            if found is not None:
                _apply_swap(a, b, found, adjacency, edges)
                placed = True
                break
            _shake(adjacency, edges, rng, rounds=200)
        if not placed:
            raise RuntimeError(
                "swap repair failed after shaking; the degree sequence "
                "is likely not graphic")


def _find_swap_random(a, b, adjacency, edges, rng, attempts):
    """Rejection-sample an edge (u, v) usable for the (a, b) repair."""
    m = len(edges)
    for __ in range(min(attempts, 8 * m)):
        u, v = edges[int(rng.integers(m))]
        if rng.random() < 0.5:
            u, v = v, u
        if (u in (a, b) or v in (a, b) or u in adjacency[a]
                or v in adjacency[b]):
            continue
        return u, v
    return None


def _find_swap_scan(a, b, adjacency, edges):
    """Deterministic search: iterate non-neighbors of ``a``.

    A near-spanning hub ``a`` has few non-neighbors, so this scan is
    cheap exactly when rejection sampling is hopeless.
    """
    n = len(adjacency)
    for u in range(n):
        if u == a or u == b or u in adjacency[a]:
            continue
        for v in adjacency[u]:
            if v == a or v == b or v in adjacency[b]:
                continue
            return u, v
    return None


def _apply_swap(a, b, edge, adjacency, edges):
    """Remove ``edge = (u, v)``, add ``(a, u)`` and ``(b, v)``."""
    u, v = edge
    canonical = (u, v) if u < v else (v, u)
    idx = edges.index(canonical)
    edges[idx] = edges[-1]
    edges.pop()
    adjacency[u].discard(v)
    adjacency[v].discard(u)
    adjacency[a].add(u)
    adjacency[u].add(a)
    edges.append((a, u) if a < u else (u, a))
    adjacency[b].add(v)
    adjacency[v].add(b)
    edges.append((b, v) if b < v else (v, b))


def _shake(adjacency, edges, rng, rounds):
    """Random degree-preserving double-edge swaps to escape dead ends."""
    m = len(edges)
    if m < 2:
        return
    for __ in range(rounds):
        i = int(rng.integers(m))
        j = int(rng.integers(m))
        if i == j:
            continue
        u, v = edges[i]
        x, y = edges[j]
        if rng.random() < 0.5:
            x, y = y, x
        # rewire (u,v)+(x,y) -> (u,x)+(v,y) when it stays simple
        if len({u, v, x, y}) < 4:
            continue
        if x in adjacency[u] or y in adjacency[v]:
            continue
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        adjacency[x].discard(y)
        adjacency[y].discard(x)
        adjacency[u].add(x)
        adjacency[x].add(u)
        adjacency[v].add(y)
        adjacency[y].add(v)
        edges[i] = (u, x) if u < x else (x, u)
        edges[j] = (v, y) if v < y else (y, v)
