"""The oriented, relabeled digraph ``G(theta_n)`` of section 2.1.

The paper's three-step preprocessing is: (1) sort nodes by a global order
and assign IDs ``1..n`` (*relabeling*); (2) direct each edge from the
larger new ID to the smaller (*orientation*), so that out-neighbors of
``y`` have smaller labels and in-neighbors have larger; (3) list
triangles ``x < y < z`` in the directed graph.

:class:`OrientedGraph` is the output of steps (1) + (2): node IDs *are*
labels (0-based here), ``out[i]`` holds the smaller-labeled neighbors and
``in[i]`` the larger-labeled ones, both sorted ascending. The
acyclicity of the orientation is immediate: every edge decreases the
label.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.obs import memory as _memory


class OrientedGraph:
    """Relabeled acyclic orientation of a simple undirected graph.

    Parameters
    ----------
    graph:
        The undirected source graph.
    labels:
        Permutation array of shape ``(n,)``: ``labels[v]`` is the new ID
        of original vertex ``v``. The orientation directs each edge from
        the endpoint with the larger label to the one with the smaller.

    Attributes
    ----------
    out_degrees:
        ``X_i(theta)`` -- out-degree per (relabeled) node.
    in_degrees:
        ``Y_i(theta)`` -- in-degree per node.
    degrees:
        ``d_i(theta) = X_i + Y_i``, the total degree in label order.
    """

    def __init__(self, graph: Graph, labels):
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (graph.n,):
            raise ValueError(
                f"labels must have shape ({graph.n},), got {labels.shape}")
        if np.unique(labels).size != graph.n or (
                graph.n and (labels.min() != 0 or labels.max() != graph.n - 1)):
            raise ValueError("labels must be a permutation of 0..n-1")
        self.graph = graph
        self.labels = labels
        self.n = graph.n
        self.m = graph.m

        edges = graph.edges
        a = labels[edges[:, 0]] if self.m else np.empty(0, dtype=np.int64)
        b = labels[edges[:, 1]] if self.m else np.empty(0, dtype=np.int64)
        src = np.maximum(a, b)  # larger label: the edge's tail
        dst = np.minimum(a, b)  # smaller label: the edge's head

        # out-CSR: for node i, sorted list of out-neighbors (labels < i)
        order = np.lexsort((dst, src))
        self._out_indices = dst[order]
        out_counts = np.bincount(src, minlength=self.n)
        self._out_indptr = np.concatenate(
            [[0], np.cumsum(out_counts)]).astype(np.int64)

        # in-CSR: for node i, sorted list of in-neighbors (labels > i)
        order = np.lexsort((src, dst))
        self._in_indices = src[order]
        in_counts = np.bincount(dst, minlength=self.n)
        self._in_indptr = np.concatenate(
            [[0], np.cumsum(in_counts)]).astype(np.int64)

        self.out_degrees = out_counts.astype(np.int64)
        self.in_degrees = in_counts.astype(np.int64)
        self.degrees = self.out_degrees + self.in_degrees
        self._edge_keys: set | None = None
        self._out_keys: np.ndarray | None = None
        self._in_keys: np.ndarray | None = None

        if _memory.is_enabled():
            _memory.track(self, "graph.csr",
                          (self._out_indices, self._out_indptr,
                           self._in_indices, self._in_indptr))
            _memory.track(self, "graph.degrees",
                          (self.out_degrees, self.in_degrees,
                           self.degrees))

    def out_neighbors(self, i: int) -> np.ndarray:
        """``N+(i)``: neighbors with smaller labels, sorted ascending."""
        return self._out_indices[self._out_indptr[i]:self._out_indptr[i + 1]]

    def in_neighbors(self, i: int) -> np.ndarray:
        """``N-(i)``: neighbors with larger labels, sorted ascending."""
        return self._in_indices[self._in_indptr[i]:self._in_indptr[i + 1]]

    def out_lists(self) -> list[np.ndarray]:
        """All out-lists as array views (avoids per-call slicing cost)."""
        return [self.out_neighbors(i) for i in range(self.n)]

    def in_lists(self) -> list[np.ndarray]:
        """All in-lists as array views."""
        return [self.in_neighbors(i) for i in range(self.n)]

    def out_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The out-adjacency as raw CSR ``(indices, indptr)`` arrays.

        Row ``i`` is ``indices[indptr[i]:indptr[i+1]]`` -- the sorted
        out-neighbors of ``i``. The vectorized engine operates on these
        directly instead of slicing per node.
        """
        return self._out_indices, self._out_indptr

    def in_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The in-adjacency as raw CSR ``(indices, indptr)`` arrays."""
        return self._in_indices, self._in_indptr

    def out_key_array(self) -> np.ndarray:
        """Directed edges as sorted int64 keys ``src * n + dst``.

        Because the out-CSR is ordered by ``(src, dst)``, the key array
        is globally sorted ascending -- so edge existence is a binary
        search (``np.searchsorted``) and prefix/suffix windows of any
        out-list are ``searchsorted`` bounds on this array. Cached.
        """
        if self._out_keys is None:
            rows = np.repeat(np.arange(self.n, dtype=np.int64),
                             self.out_degrees)
            self._out_keys = rows * np.int64(self.n) + self._out_indices
            _memory.track(self, "graph.keys", (self._out_keys,))
        return self._out_keys

    def in_key_array(self) -> np.ndarray:
        """Reverse-direction keys ``dst * n + src``, sorted ascending.

        The in-CSR analogue of :meth:`out_key_array`: window bounds for
        in-lists (``N-(v)`` restricted above/below a label) become
        ``searchsorted`` calls on this array. Cached.
        """
        if self._in_keys is None:
            rows = np.repeat(np.arange(self.n, dtype=np.int64),
                             self.in_degrees)
            self._in_keys = rows * np.int64(self.n) + self._in_indices
            _memory.track(self, "graph.keys", (self._in_keys,))
        return self._in_keys

    def edge_key_set(self) -> set:
        """Hash set of directed edges encoded as ``src * n + dst``.

        This is the edge-existence hash table the vertex iterators probe
        (section 2.2). Built lazily and cached.
        """
        if self._edge_keys is None:
            self._edge_keys = set(self.out_key_array().tolist())
        return self._edge_keys

    def has_directed_edge(self, src: int, dst: int) -> bool:
        """Is there an edge ``src -> dst``? (Requires ``src > dst``.)"""
        outs = self.out_neighbors(src)
        pos = int(np.searchsorted(outs, dst))
        return pos < outs.size and outs[pos] == dst

    def original_vertex(self, label: int) -> int:
        """Map a label back to the original vertex ID."""
        if not hasattr(self, "_inverse"):
            inverse = np.empty(self.n, dtype=np.int64)
            inverse[self.labels] = np.arange(self.n)
            self._inverse = inverse
        return int(self._inverse[label])

    def __repr__(self) -> str:
        return f"OrientedGraph(n={self.n}, m={self.m})"
