"""Graph substrate: adjacency structures and random-graph generation.

Implements the deterministic-graph machinery of section 2 (sorted
adjacency lists, acyclic orientations ``G(theta_n)``) and the
random-graph generation of section 7.2:

* :class:`Graph` -- simple undirected graph in CSR form with adjacency
  lists sorted ascending by node ID.
* :class:`OrientedGraph` -- the relabeled digraph ``G(theta)`` where node
  IDs *are* labels and each edge points from the larger label to the
  smaller (out-neighbors have smaller labels, as in section 2.1).
* :func:`configuration_model` -- classic stub matching [8], [30] with
  simplification; exhibits the degree deficit the paper warns about.
* :func:`residual_degree_model` -- the paper's generator (a variation of
  Blitzstein-Diaconis [11]): neighbors picked in proportion to residual
  degree, excluding already-attached neighbors, in ``O(m log n)`` via a
  Fenwick tree, with double-edge-swap repair for the stuck tail.
* :func:`generate_graph` -- convenience dispatcher.
* :func:`erdos_gallai_graphical` -- graphicality test for degree
  sequences.
"""

from repro.graphs.fenwick import FenwickTree
from repro.graphs.degree import (
    erdos_gallai_graphical,
    degree_histogram,
    ascending_order_statistics,
)
from repro.graphs.graph import Graph
from repro.graphs.digraph import OrientedGraph
from repro.graphs.generators import (
    configuration_model,
    residual_degree_model,
    generate_graph,
)
from repro.graphs.analysis import (
    degeneracy,
    arboricity_bounds,
    triangle_count,
    triangle_count_sparse,
    global_clustering_coefficient,
    expected_triangles_configuration_model,
    wedge_count,
    degree_assortativity,
    empirical_spread_sample,
)
from repro.graphs.generators import havel_hakimi_graph
from repro.graphs.compressed import (
    CompressedOrientedGraph,
    run_e1_compressed,
)
from repro.graphs.io import (
    save_edge_list,
    load_edge_list,
    save_degree_sequence,
    load_degree_sequence,
)
from repro.graphs.components import (
    connected_components,
    component_sizes,
    largest_component,
    induced_subgraph,
)

__all__ = [
    "FenwickTree",
    "erdos_gallai_graphical",
    "degree_histogram",
    "ascending_order_statistics",
    "Graph",
    "OrientedGraph",
    "configuration_model",
    "residual_degree_model",
    "generate_graph",
    "degeneracy",
    "arboricity_bounds",
    "triangle_count",
    "triangle_count_sparse",
    "havel_hakimi_graph",
    "CompressedOrientedGraph",
    "run_e1_compressed",
    "global_clustering_coefficient",
    "expected_triangles_configuration_model",
    "wedge_count",
    "save_edge_list",
    "load_edge_list",
    "save_degree_sequence",
    "load_degree_sequence",
    "connected_components",
    "component_sizes",
    "largest_component",
    "induced_subgraph",
    "degree_assortativity",
    "empirical_spread_sample",
]
