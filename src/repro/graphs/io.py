"""Plain-text graph and degree-sequence I/O.

Formats are deliberately boring and interoperable:

* edge lists -- one ``u v`` pair per line (comments with ``#``), the
  format of SNAP datasets like the paper's Twitter graph [27];
* degree sequences -- one integer per line.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.graphs.graph import Graph


def save_edge_list(graph: Graph, path, header: bool = True) -> None:
    """Write the graph as a ``u v`` edge list."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        if header:
            fh.write(f"# simple undirected graph: n={graph.n} "
                     f"m={graph.m}\n")
        np.savetxt(fh, graph.edges, fmt="%d")


def load_edge_list(path, n: int | None = None) -> Graph:
    """Read a ``u v`` edge-list file (``#`` comments ignored).

    Node IDs must be non-negative integers; ``n`` is inferred as
    ``max ID + 1`` when not given. Duplicate rows (in either direction)
    are collapsed; self-loops are dropped -- real-world dumps routinely
    contain both.
    """
    path = pathlib.Path(path)
    lines = [line for line in path.read_text().splitlines()
             if line.strip() and not line.lstrip().startswith("#")]
    if not lines:
        return Graph(n or 0, [])
    raw = np.loadtxt(lines, dtype=np.int64, ndmin=2)
    if raw.shape[1] != 2:
        raise ValueError(
            f"expected two columns of node IDs, got shape {raw.shape}")
    lo = np.minimum(raw[:, 0], raw[:, 1])
    hi = np.maximum(raw[:, 0], raw[:, 1])
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    if n is None:
        n = int(max(lo.max(initial=-1), hi.max(initial=-1))) + 1
    keys = lo * np.int64(n) + hi
    __, unique_idx = np.unique(keys, return_index=True)
    edges = np.column_stack([lo[unique_idx], hi[unique_idx]])
    return Graph(n, edges)


def save_degree_sequence(degrees, path) -> None:
    """Write one degree per line."""
    np.savetxt(pathlib.Path(path), np.asarray(degrees, dtype=np.int64),
               fmt="%d")


def load_degree_sequence(path) -> np.ndarray:
    """Read a one-degree-per-line file."""
    return np.loadtxt(pathlib.Path(path), dtype=np.int64,
                      comments="#", ndmin=1)
