"""Simple undirected graph with sorted adjacency lists (CSR layout).

Matches the paper's standing assumption (section 2): "adjacency lists in
graphs are sorted ascending by node ID". Nodes are 0-based integers
``0..n-1`` (the paper writes ``1..n``; the shift is purely cosmetic).
"""

from __future__ import annotations

import numpy as np


class Graph:
    """Immutable simple undirected graph in CSR form.

    Parameters
    ----------
    n:
        Number of nodes (IDs ``0..n-1``). Isolated nodes are allowed.
    edges:
        Array-like of shape ``(m, 2)``. Self-loops are rejected;
        duplicate edges (in either orientation) are rejected -- the
        generators are responsible for producing simple graphs, and a
        silent dedup here would mask generator bugs.
    """

    def __init__(self, n: int, edges):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise ValueError("edge endpoint out of range")
        if edges.size and np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("self-loops are not allowed in a simple graph")
        # canonicalize each edge as (min, max) and check simplicity
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        if edges.size:
            keys = lo * np.int64(n) + hi
            if np.unique(keys).size != keys.size:
                raise ValueError("duplicate edges are not allowed")
        self.n = int(n)
        self.m = int(edges.shape[0])
        self._edges = np.column_stack([lo, hi]) if edges.size else (
            np.empty((0, 2), dtype=np.int64))
        # CSR over both directions, neighbor lists sorted ascending
        heads = np.concatenate([lo, hi])
        tails = np.concatenate([hi, lo])
        order = np.lexsort((tails, heads))
        self._indices = tails[order]
        counts = np.bincount(heads, minlength=n)
        self._indptr = np.concatenate(
            [[0], np.cumsum(counts)]).astype(np.int64)
        self._degrees = counts.astype(np.int64)

    @classmethod
    def from_edge_list(cls, edges, n: int | None = None) -> "Graph":
        """Build from an iterable of ``(u, v)`` pairs.

        When ``n`` is omitted it is inferred as ``max ID + 1``.
        """
        edges = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        if n is None:
            n = int(edges.max()) + 1 if edges.size else 0
        return cls(n, edges)

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node, shape ``(n,)``."""
        return self._degrees

    @property
    def edges(self) -> np.ndarray:
        """Canonical edge array of shape ``(m, 2)`` with ``u < v``."""
        return self._edges

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor IDs of ``v`` (a view into the CSR arrays)."""
        return self._indices[self._indptr[v]:self._indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search in the sorted list."""
        if u == v:
            return False
        nbrs = self.neighbors(u)
        pos = int(np.searchsorted(nbrs, v))
        return pos < nbrs.size and nbrs[pos] == v

    def adjacency_sets(self) -> list[set]:
        """Neighbor sets per node, for hash-based algorithms."""
        return [set(self.neighbors(v).tolist()) for v in range(self.n)]

    def triangle_count_reference(self) -> int:
        """Exact triangle count via trace(A^3)/6 on a dense matrix.

        Only intended for small test graphs (dense ``n x n`` memory).
        """
        if self.n > 4000:
            raise ValueError("dense reference count limited to n <= 4000")
        a = np.zeros((self.n, self.n), dtype=np.int64)
        if self.m:
            a[self._edges[:, 0], self._edges[:, 1]] = 1
            a[self._edges[:, 1], self._edges[:, 0]] = 1
        return int(np.trace(a @ a @ a) // 6)

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"
