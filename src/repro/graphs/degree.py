"""Degree-sequence utilities: graphicality, order statistics, histograms.

Section 3.1 requires degree sequences to be *graphic* (realizable by a
simple graph), which the Erdos-Gallai theorem characterizes, and works
with the ascending order statistics ``A_n`` of the sampled sequence.
"""

from __future__ import annotations

import numpy as np


def erdos_gallai_graphical(degrees) -> bool:
    """Erdos-Gallai test: can ``degrees`` be realized by a simple graph?

    A non-increasing sequence ``d_1 >= ... >= d_n`` of non-negative
    integers is graphic iff the sum is even and for every ``k``::

        sum_{i<=k} d_i  <=  k (k - 1) + sum_{i>k} min(d_i, k)

    Runs in ``O(n log n)`` (dominated by the sort) using the standard
    prefix-sum formulation.
    """
    d = np.sort(np.asarray(degrees, dtype=np.int64))[::-1]
    n = d.size
    if n == 0:
        return True
    if d[0] < 0:
        return False
    if d[0] >= n:
        return False
    total = int(d.sum())
    if total % 2 == 1:
        return False
    prefix = np.cumsum(d)
    ascending = d[::-1]
    # For the right-hand side we need sum_{i>k} min(d_i, k). Since d is
    # sorted descending, min(d_i, k) == k for i <= m(k) and == d_i after,
    # where m(k) = #\{i > k : d_i > k\}.
    for k in range(1, n + 1):
        lhs = int(prefix[k - 1])
        # count entries beyond position k that still exceed k
        cutoff = n - int(np.searchsorted(ascending, k, side="right"))
        m = max(cutoff - k, 0)
        tail_sum = int(prefix[-1] - prefix[k + m - 1]) if k + m <= n else 0
        rhs = k * (k - 1) + m * k + tail_sum
        if lhs > rhs:
            return False
        if d[k - 1] <= k:
            # remaining inequalities hold automatically once d_k <= k
            break
    return True


def ascending_order_statistics(degrees) -> np.ndarray:
    """The paper's ``A_n``: the degree sequence sorted ascending."""
    return np.sort(np.asarray(degrees, dtype=np.int64))


def degree_histogram(degrees) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(values, counts)`` of the degree multiset."""
    return np.unique(np.asarray(degrees, dtype=np.int64),
                     return_counts=True)
