"""One-call convenience wrapper over the three-step framework.

For users who want the paper's recommended pipeline without assembling
the pieces: pick an ordering and a method (or let the library pick the
method's optimal ordering), run relabel + orient + list, and get the
result together with the cost diagnostics the paper's analysis is
about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import method_cost
from repro.core.decision import MethodDecision, decide_on_graph
from repro.core.optimality import optimal_map
from repro.listing.api import list_triangles
from repro.listing.base import ListingResult
from repro.orientations.degenerate import DegenerateOrder
from repro.orientations.permutations import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    Permutation,
    RoundRobin,
    UniformRandom,
)
from repro.orientations.relabel import orient

_ORDERS: dict[str, Permutation] = {
    "ascending": AscendingDegree(),
    "descending": DescendingDegree(),
    "rr": RoundRobin(),
    "crr": ComplementaryRoundRobin(),
    "uniform": UniformRandom(),
    "degenerate": DegenerateOrder(),
}

#: The optimal named ordering per method (Corollaries 1-2).
_OPTIMAL_ORDER = {
    "ascending": ("T3", "T6", "E3", "E5", "L4", "L5"),
    "descending": ("T1", "T4", "E1", "E2", "L2", "L6"),
    "rr": ("T2", "T5", "L1", "L3"),
    "crr": ("E4", "E6"),
}


def optimal_order_for(method: str) -> str:
    """The Corollary 1-2 ordering name for a method."""
    method = method.upper()
    for order, methods in _OPTIMAL_ORDER.items():
        if method in methods:
            return order
    raise ValueError(f"unknown method {method!r}")


@dataclass
class PipelineReport:
    """Everything one pipeline run produced."""

    result: ListingResult
    order: str
    per_node_cost: float
    decision: MethodDecision

    @property
    def triangles(self):
        return self.result.triangles

    @property
    def count(self) -> int:
        return self.result.count


def run_pipeline(graph, method: str = "E1", order: str | None = None,
                 rng: np.random.Generator | None = None,
                 collect: bool = True) -> PipelineReport:
    """Relabel, orient, and list in one call.

    ``order`` is one of ``ascending``/``descending``/``rr``/``crr``/
    ``uniform``/``degenerate``; omitted, the method's optimal ordering
    (Corollaries 1-2) is chosen automatically. ``method="auto"`` asks
    the cost-model planner (:func:`repro.planner.plan_for_graph`) for
    the cheapest (method, ordering) pair on this graph and runs it
    (``order``, when also given, constrains the planner's candidates
    to that ordering). The report carries the measured per-node cost
    and the section 2.4 hardware decision for the oriented graph.

    Example::

        report = run_pipeline(graph, method="T1")
        print(report.count, report.order, report.per_node_cost)
    """
    method = method.upper()
    audit_plan = None
    if method == "AUTO":
        from repro.planner import GRAPH_ORDERINGS, plan_for_graph
        orderings = (order,) if order else GRAPH_ORDERINGS
        plan = plan_for_graph(graph, orderings=orderings)
        method = plan.best.method
        order = plan.best.ordering
        audit_plan = plan
    from repro.obs import audit as _audit
    audit_on = audit_plan is not None and _audit.is_enabled()
    if order is None:
        order = optimal_order_for(method)
    if order == "opt":
        from repro.planner import Candidate
        permutation = Candidate(method, "opt").permutation()
    else:
        permutation = _ORDERS.get(order)
    if permutation is None:
        raise ValueError(
            f"unknown order {order!r}; choose from "
            f"{sorted([*_ORDERS, 'opt'])}")
    if permutation.is_random and rng is None:
        rng = np.random.default_rng()
    if audit_on:
        import time
        wall_start = time.perf_counter()
    oriented = orient(graph, permutation, rng=rng)
    result = list_triangles(oriented, method, collect=collect)
    if audit_on:
        wall = time.perf_counter() - wall_start
        _audit.record_auto_route(
            audit_plan, "run_pipeline", result=result, wall_s=wall,
            exact_plan=audit_plan,
            max_degree=int(graph.degrees.max()) if graph.n else 0)
    return PipelineReport(
        result=result,
        order=order,
        per_node_cost=method_cost(oriented, method),
        decision=decide_on_graph(oriented),
    )
