"""Exact inverse-CDF sampling of i.i.d. degree sequences ``D_n``.

The stochastic framework (section 1.2) assumes ``D_n = (D_n1, ..., D_nn)``
is i.i.d. from the truncated law ``F_n(x) = F(x)/F(t_n)``. Sampling is by
inverse transform, so a distribution with an analytic quantile (Pareto,
geometric) is sampled exactly and in vectorized time.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import DegreeDistribution


def sample_degree_sequence(dist: DegreeDistribution, n: int,
                           rng: np.random.Generator,
                           ensure_even_sum: bool = True,
                           ensure_graphical: bool | None = None
                           ) -> np.ndarray:
    """Draw an i.i.d. degree sequence of length ``n`` from ``dist``.

    Parameters
    ----------
    dist:
        The (typically truncated) degree law ``F_n``.
    n:
        Number of nodes.
    rng:
        NumPy random generator; all randomness flows through it.
    ensure_even_sum:
        A degree sequence is realizable by a graph only when its sum is
        even. The paper handles an odd sum "by removal of one edge";
        equivalently we lower one degree by 1 (never below the support
        minimum -- in that case we raise one instead, staying inside
        ``[1, t_n]``). Set to ``False`` to get the raw i.i.d. draw.
    ensure_graphical:
        Section 1.2 assumes ``F_n`` "is graphic with probability
        1 - o(1), or can be made such by removal of one edge". For very
        heavy tails under linear truncation (e.g. alpha = 1.2) the
        Erdos-Gallai condition does occasionally fail at finite ``n``;
        this flag applies the paper's remedy repeatedly -- remove one
        edge worth of degree from the two largest entries -- until the
        sequence is graphic. Defaults to ``ensure_even_sum`` (raw
        draws stay raw; realizable draws become fully realizable);
        requires ``ensure_even_sum`` when forced on.

    Returns
    -------
    numpy.ndarray of int64, shape ``(n,)``.
    """
    if n < 1:
        raise ValueError(f"need at least one node, got n={n}")
    if ensure_graphical is None:
        ensure_graphical = ensure_even_sum
    degrees = np.asarray(dist.quantile(rng.random(n)), dtype=np.int64)
    if degrees.ndim == 0:
        degrees = degrees.reshape(1)
    if ensure_even_sum and degrees.sum() % 2 == 1:
        degrees = _fix_parity(degrees, dist, rng)
    if ensure_graphical:
        if not ensure_even_sum:
            raise ValueError(
                "ensure_graphical requires ensure_even_sum")
        degrees = _make_graphical(degrees)
    return degrees


def _make_graphical(degrees: np.ndarray) -> np.ndarray:
    """Remove one edge at a time (two -1s at the top) until graphic.

    The Erdos-Gallai constraint binds at the largest degrees, so
    shaving the top two entries is both the paper's "removal of one
    edge" and the fastest route back to feasibility.
    """
    from repro.graphs.degree import erdos_gallai_graphical
    degrees = degrees.copy()
    while not erdos_gallai_graphical(degrees):
        top_two = np.argpartition(degrees, -2)[-2:]
        if degrees[top_two].min() <= 1:
            raise ValueError(
                "cannot repair the degree sequence into a graphic one")
        degrees[top_two] -= 1
    return degrees


def _fix_parity(degrees: np.ndarray, dist: DegreeDistribution,
                rng: np.random.Generator) -> np.ndarray:
    """Adjust one entry by +-1 so the sum becomes even, within support."""
    degrees = degrees.copy()
    lowerable = np.flatnonzero(degrees > dist.support_min)
    if lowerable.size:
        degrees[rng.choice(lowerable)] -= 1
        return degrees
    raisable = np.flatnonzero(degrees < dist.support_max)
    if raisable.size:
        degrees[rng.choice(raisable)] += 1
        return degrees
    raise ValueError(
        "cannot fix parity: the distribution is degenerate at a single "
        "odd support point and n is odd")
