"""Abstract integer degree distributions and truncation.

All degree laws in this package live on the positive integers
``{1, 2, 3, ...}`` (possibly capped at a finite maximum), matching the
paper's assumption that ``F(x)`` is a CDF on integers in ``[1, inf)``.

The two central operations the rest of the library needs are

* exact CDF/PMF evaluation (the discrete model (50) sums the PMF of the
  *truncated* degree), and
* exact inverse-CDF sampling (degree sequences ``D_n`` are i.i.d. draws
  from ``F_n(x) = F(x) / F(t_n)``).
"""

from __future__ import annotations

import abc
import math

import numpy as np


class DegreeDistribution(abc.ABC):
    """A probability distribution on the positive integers.

    Subclasses must implement :meth:`cdf`; the default :meth:`pmf`,
    :meth:`quantile`, and moment helpers are derived from it. Subclasses
    with closed forms should override them for speed and accuracy.
    """

    #: Smallest value in the support. The paper fixes this at 1.
    support_min: int = 1

    @property
    def support_max(self) -> float:
        """Largest value in the support (``math.inf`` if unbounded)."""
        return math.inf

    @abc.abstractmethod
    def cdf(self, x):
        """``P(D <= x)`` for scalar or array ``x`` (real-valued allowed)."""

    def sf(self, x):
        """Survival function ``P(D > x)``."""
        return 1.0 - self.cdf(x)

    def pmf(self, k):
        """``P(D = k)`` for integer scalar or array ``k``."""
        k = np.asarray(k, dtype=float)
        return np.maximum(self.cdf(k) - self.cdf(k - 1.0), 0.0)

    def pmf_vector(self, t: int) -> np.ndarray:
        """Return ``[P(D = 1), ..., P(D = t)]`` as a dense array.

        This is the ``p_i`` vector that powers the discrete cost model
        (50); computing it in one vectorized pass keeps the model linear
        in ``t``.
        """
        ks = np.arange(1, t + 1, dtype=float)
        return self.pmf(ks)

    def quantile(self, u):
        """Smallest integer ``k >= support_min`` with ``cdf(k) >= u``.

        The generic implementation gallops exponentially and then
        bisects; distributions with analytic inverses override this.
        """
        u_arr = np.atleast_1d(np.asarray(u, dtype=float))
        out = np.empty(u_arr.shape, dtype=np.int64)
        for idx, ui in np.ndenumerate(u_arr):
            out[idx] = self._quantile_scalar(float(ui))
        if np.isscalar(u) or np.asarray(u).ndim == 0:
            return int(out.reshape(-1)[0])
        return out

    def _quantile_scalar(self, u: float) -> int:
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"quantile argument must be in [0, 1], got {u}")
        lo = self.support_min
        if self.cdf(lo) >= u:
            return lo
        hi = lo + 1
        limit = self.support_max
        while self.cdf(hi) < u:
            if hi >= limit:
                return int(limit)
            hi = min(hi * 2, int(limit) if math.isfinite(limit) else hi * 2)
        # invariant: cdf(lo) < u <= cdf(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.cdf(mid) >= u:
                hi = mid
            else:
                lo = mid
        return hi

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. degrees via inverse-CDF sampling."""
        return np.asarray(self.quantile(rng.random(size)), dtype=np.int64)

    def mean(self, tol: float = 1e-12, max_terms: int = 10**8) -> float:
        """``E[D]``, via ``sum_{k>=0} P(D > k)`` with tail tolerance."""
        return self.moment(1, tol=tol, max_terms=max_terms)

    def moment(self, p: float, rtol: float = 1e-9,
               max_exact: int = 2**24) -> float:
        """``E[D^p]`` by geometric-block summation with tail extrapolation.

        Exact vectorized partial sums over dyadic blocks
        ``[2^i, 2^{i+1})`` up to ``max_exact``; for heavy tails the
        remaining mass is extrapolated from the geometric decay of the
        last block contributions (exact for power-law tails in the
        limit). Block contributions that stop decaying signal an
        infinite moment and yield ``math.inf``. Subclasses with closed
        forms (Pareto, Zipf, geometric) override this.
        """
        limit = self.support_max
        if math.isfinite(limit):
            ks = np.arange(self.support_min, int(limit) + 1, dtype=float)
            return float(np.sum(ks**p * self.pmf(ks)))
        total = 0.0
        contribs = []
        start = self.support_min
        end = 2
        while start < max_exact:
            ks = np.arange(start, min(end, max_exact), dtype=float)
            contrib = float(np.sum(ks**p * self.pmf(ks)))
            contribs.append(contrib)
            total += contrib
            if total > 0 and contrib < rtol * total and float(
                    self.sf(end - 1)) * end**p < rtol * total:
                return total
            start, end = end, end * 2
        # extrapolate the tail from the decay ratio of the last blocks
        last, prev = contribs[-1], contribs[-2]
        if prev <= 0.0:
            return total
        ratio = last / prev
        if ratio >= 0.999:  # contributions not decaying: divergent sum
            return math.inf
        return total + last * ratio / (1.0 - ratio)

    def truncate(self, t: int) -> "TruncatedDistribution":
        """Return ``F_n(x) = F(x) / F(t)`` restricted to ``[1, t]``."""
        return TruncatedDistribution(self, t)

    def partial_weighted_sum(self, x: int, weight) -> float:
        """``sum_{k <= x} weight(k) * pmf(k)``; building block of J(x)."""
        if x < self.support_min:
            return 0.0
        hi = x
        if math.isfinite(self.support_max):
            hi = min(hi, int(self.support_max))
        ks = np.arange(self.support_min, hi + 1, dtype=float)
        return float(np.sum(weight(ks) * self.pmf(ks)))


class TruncatedDistribution(DegreeDistribution):
    """``F_n(x) = F(x) / F(t_n)`` on ``[1, t_n]`` (paper section 1.2).

    ``base`` is the limiting distribution ``F`` and ``t`` the truncation
    point ``t_n``. All mass above ``t`` is removed and the remainder is
    renormalized, exactly as in the paper (not "capped at t").
    """

    def __init__(self, base: DegreeDistribution, t: int):
        t = int(t)
        if t < base.support_min:
            raise ValueError(
                f"truncation point {t} below support minimum "
                f"{base.support_min}")
        self.base = base
        self.t = t
        self._norm = float(base.cdf(t))
        if self._norm <= 0.0:
            raise ValueError("truncated distribution has zero mass")

    @property
    def support_max(self) -> float:
        return float(self.t)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        clipped = np.minimum(x, float(self.t))
        return np.where(x < self.base.support_min, 0.0,
                        self.base.cdf(clipped) / self._norm)

    def sf(self, x):
        """Survival via the base's sf -- keeps relative precision for
        tails far below float64's epsilon around 1.0."""
        x = np.asarray(x, dtype=float)
        clipped = np.minimum(x, float(self.t))
        tail = (self.base.sf(clipped) - self._base_tail) / self._norm
        return np.where(x < self.base.support_min, 1.0,
                        np.maximum(tail, 0.0))

    @property
    def _base_tail(self) -> float:
        return float(self.base.sf(self.t))

    def pmf(self, k):
        k = np.asarray(k, dtype=float)
        inside = (k >= self.base.support_min) & (k <= self.t)
        return np.where(inside, self.base.pmf(k) / self._norm, 0.0)

    def quantile(self, u):
        u = np.asarray(u, dtype=float)
        result = self.base.quantile(u * self._norm)
        return np.minimum(result, self.t) if np.ndim(result) else min(
            result, self.t)

    def truncate(self, t: int) -> "TruncatedDistribution":
        """Re-truncating always re-normalizes against the original base."""
        return TruncatedDistribution(self.base, min(int(t), self.t))

    def __repr__(self) -> str:
        return f"TruncatedDistribution({self.base!r}, t={self.t})"


class EmpiricalDegreeDistribution(DegreeDistribution):
    """Degree law estimated from an observed degree sequence.

    Useful for feeding the paper's cost models with the degree
    distribution of a concrete graph (the section 7.5 use case: predict
    per-method cost from a real graph's degree histogram).
    """

    def __init__(self, degrees):
        degrees = np.asarray(degrees, dtype=np.int64)
        if degrees.size == 0:
            raise ValueError("empty degree sequence")
        if degrees.min() < 1:
            raise ValueError("degrees must be >= 1")
        values, counts = np.unique(degrees, return_counts=True)
        self._values = values
        self._probs = counts / counts.sum()
        self._cum = np.cumsum(self._probs)
        self._max = int(values[-1])
        self._min = int(values[0])

    @property
    def support_min(self) -> int:  # type: ignore[override]
        return self._min

    @property
    def support_max(self) -> float:
        return float(self._max)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        idx = np.searchsorted(self._values, x, side="right")
        cum = np.concatenate([[0.0], self._cum])
        return cum[idx]

    def pmf(self, k):
        k = np.asarray(k, dtype=float)
        idx = np.searchsorted(self._values, k)
        idx_clipped = np.clip(idx, 0, self._values.size - 1)
        match = self._values[idx_clipped] == k
        return np.where(match, self._probs[idx_clipped], 0.0)

    def quantile(self, u):
        u = np.asarray(u, dtype=float)
        idx = np.searchsorted(self._cum, u, side="left")
        idx = np.clip(idx, 0, self._values.size - 1)
        result = self._values[idx]
        if result.ndim == 0:
            return int(result)
        return result.astype(np.int64)

    def __repr__(self) -> str:
        return (f"EmpiricalDegreeDistribution(support=[{self._min}, "
                f"{self._max}], points={self._values.size})")
