"""Additional degree laws beyond the paper's Pareto.

The paper's theory (Theorems 1-5) is stated for an *arbitrary* degree CDF
``F(x)`` on the positive integers; only the evaluation section specializes
to Pareto. These laws exercise the general machinery:

* :class:`GeometricDegree` -- light (exponential) tail; every moment is
  finite, so every method/permutation has a finite limit. The paper notes
  that exponential ``D`` produces an Erlang(2) spread.
* :class:`ZipfDegree` -- the classic pure power law ``P(D = k) ~ k^(-s)``,
  an alternative heavy-tailed family with the same tail index semantics
  (``s = alpha + 1`` matches Pareto tail ``alpha``).
* :class:`PoissonDegree` -- zero-truncated Poisson, the Erdos-Renyi
  degree shape [19]; the "classical random graphs" the introduction
  contrasts against.
* :class:`LogNormalDegree` -- discretized lognormal: every moment finite
  (all limits converge) yet sub-exponentially heavy, probing the space
  between geometric and Pareto.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special, stats

from repro.distributions.base import DegreeDistribution


class GeometricDegree(DegreeDistribution):
    """Geometric law on ``{1, 2, ...}``: ``P(D = k) = (1-p)^(k-1) p``."""

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = float(p)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        fl = np.floor(x)
        val = 1.0 - np.power(1.0 - self.p, np.maximum(fl, 0.0))
        return np.where(fl < 1.0, 0.0, val)

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        fl = np.floor(x)
        val = np.power(1.0 - self.p, np.maximum(fl, 0.0))
        return np.where(fl < 1.0, 1.0, val)

    def pmf(self, k):
        k = np.asarray(k, dtype=float)
        valid = (k >= 1.0) & (k == np.floor(k))
        safe_k = np.where(valid, k, 1.0)
        return np.where(valid,
                        np.power(1.0 - self.p, safe_k - 1.0) * self.p, 0.0)

    def quantile(self, u):
        u = np.asarray(u, dtype=float)
        # smallest k with 1 - (1-p)^k >= u  <=>  k >= log(1-u)/log(1-p)
        with np.errstate(divide="ignore"):
            raw = np.log1p(-u) / math.log(1.0 - self.p)
        ks = np.maximum(np.ceil(raw - 1e-12), 1.0)
        result = np.where(np.isinf(raw), np.inf, ks)
        if result.ndim == 0:
            val = float(result)
            return math.inf if math.isinf(val) else int(val)
        return result

    def mean(self, **_ignored) -> float:
        return 1.0 / self.p

    def moment(self, p: float, **kwargs) -> float:
        if p == 1:
            return self.mean()
        if p == 2:
            # E[D^2] = (2 - p) / p^2 for the {1, 2, ...} geometric law
            return (2.0 - self.p) / (self.p * self.p)
        return super().moment(p, **kwargs)

    def __repr__(self) -> str:
        return f"GeometricDegree(p={self.p})"


class ZipfDegree(DegreeDistribution):
    """Zipf law on ``{1, 2, ...}``: ``P(D = k) = k^(-s) / zeta(s)``.

    Requires ``s > 1``. ``E[D^p]`` is finite iff ``p < s - 1``, so the
    Pareto results with tail index ``alpha`` translate to ``s = alpha + 1``.
    """

    def __init__(self, s: float):
        if s <= 1.0:
            raise ValueError(f"Zipf exponent must exceed 1, got {s}")
        self.s = float(s)
        self._zeta = float(special.zeta(self.s, 1.0))

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        fl = np.floor(x)
        # sum_{k<=x} k^-s = zeta(s) - zeta(s, x+1)  (Hurwitz tail)
        partial = self._zeta - special.zeta(self.s, np.maximum(fl, 0.0) + 1.0)
        return np.where(fl < 1.0, 0.0, partial / self._zeta)

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        fl = np.floor(x)
        tail = special.zeta(self.s, np.maximum(fl, 0.0) + 1.0) / self._zeta
        return np.where(fl < 1.0, 1.0, tail)

    def pmf(self, k):
        k = np.asarray(k, dtype=float)
        valid = (k >= 1.0) & (k == np.floor(k))
        safe_k = np.where(valid, k, 1.0)
        return np.where(valid, np.power(safe_k, -self.s) / self._zeta, 0.0)

    def mean(self, **_ignored) -> float:
        if self.s <= 2.0:
            return math.inf
        return float(special.zeta(self.s - 1.0, 1.0)) / self._zeta

    def moment(self, p: float, **kwargs) -> float:
        if p >= self.s - 1.0:
            return math.inf
        if self.s - p > 1.0:
            return float(special.zeta(self.s - p, 1.0)) / self._zeta
        return super().moment(p, **kwargs)

    def __repr__(self) -> str:
        return f"ZipfDegree(s={self.s})"


class PoissonDegree(DegreeDistribution):
    """Zero-truncated Poisson on ``{1, 2, ...}``.

    ``P(D = k) = e^-lam lam^k / (k! (1 - e^-lam))`` -- the degree shape
    of sparse Erdos-Renyi graphs [19], i.e. the "classical random
    graphs" whose subgraph frequencies the introduction contrasts with
    heavy-tailed networks. All moments finite; every cost limit
    converges under every permutation.
    """

    def __init__(self, lam: float):
        if lam <= 0:
            raise ValueError(f"rate must be positive, got {lam}")
        self.lam = float(lam)
        self._norm = 1.0 - math.exp(-self.lam)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        fl = np.floor(x)
        raw = stats.poisson.cdf(np.maximum(fl, 0.0), self.lam)
        zero_mass = math.exp(-self.lam)
        val = (raw - zero_mass) / self._norm
        return np.where(fl < 1.0, 0.0, np.clip(val, 0.0, 1.0))

    def pmf(self, k):
        k = np.asarray(k, dtype=float)
        valid = (k >= 1.0) & (k == np.floor(k))
        safe_k = np.where(valid, k, 1.0)
        return np.where(valid,
                        stats.poisson.pmf(safe_k, self.lam) / self._norm,
                        0.0)

    def mean(self, **_ignored) -> float:
        return self.lam / self._norm

    def moment(self, p: float, **kwargs) -> float:
        if p == 1:
            return self.mean()
        if p == 2:
            # E[K^2] for Poisson = lam^2 + lam; truncation renormalizes
            return (self.lam * self.lam + self.lam) / self._norm
        return super().moment(p, **kwargs)

    def __repr__(self) -> str:
        return f"PoissonDegree(lam={self.lam})"


class LogNormalDegree(DegreeDistribution):
    """Discretized lognormal: ``D = ceil(exp(N(mu, sigma^2)))``.

    Sub-exponential but lighter than any power law: every moment is
    finite (all limits converge) while the degree histogram still shows
    hub-like skew. A useful probe between geometric and Pareto.
    """

    def __init__(self, mu: float, sigma: float):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        fl = np.floor(x)
        safe = np.maximum(fl, 1.0)
        val = stats.norm.cdf((np.log(safe) - self.mu) / self.sigma)
        return np.where(fl < 1.0, 0.0, val)

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        fl = np.floor(x)
        safe = np.maximum(fl, 1.0)
        val = stats.norm.sf((np.log(safe) - self.mu) / self.sigma)
        return np.where(fl < 1.0, 1.0, val)

    def quantile(self, u):
        u = np.asarray(u, dtype=float)
        raw = np.exp(self.mu + self.sigma * stats.norm.ppf(u))
        ks = np.maximum(np.ceil(raw - 1e-12), 1.0)
        result = np.where(np.isinf(raw), np.inf, ks)
        if result.ndim == 0:
            val = float(result)
            return math.inf if math.isinf(val) else int(val)
        return result

    def __repr__(self) -> str:
        return f"LogNormalDegree(mu={self.mu}, sigma={self.sigma})"
