"""Degree distributions, truncation, and degree-sequence sampling.

The paper (section 1.2) starts from a CDF ``F(x)`` on the integers in
``[1, inf)``, a monotonically increasing truncation function ``t_n``, and the
truncated distribution ``F_n(x) = F(x) / F(t_n)`` restricted to ``[1, t_n]``.
An i.i.d. degree sequence ``D_n = (D_n1, ..., D_nn)`` drawn from ``F_n`` is
then realized by a random graph ``G_n``.

This subpackage provides:

* :class:`DegreeDistribution` -- the abstract integer-valued degree law.
* :class:`DiscretePareto` -- the paper's workhorse
  ``F(x) = 1 - (1 + floor(x)/beta)^(-alpha)`` (section 7.1).
* :class:`ContinuousPareto` -- ``F*(x) = 1 - (1 + x/beta)^(-alpha)`` used by
  the continuous model, eq. (49).
* :class:`TruncatedDistribution` -- ``F_n(x) = F(x)/F(t_n)`` on ``[1, t_n]``.
* :func:`linear_truncation` / :func:`root_truncation` -- ``t_n = n - 1`` and
  ``t_n = sqrt(n)`` (Definition 1 and section 3.1).
* :func:`sample_degree_sequence` -- exact inverse-CDF sampling of ``D_n``.
* Extra laws for experimentation beyond the paper:
  :class:`GeometricDegree`, :class:`ZipfDegree`, and
  :class:`EmpiricalDegreeDistribution`.
"""

from repro.distributions.base import (
    DegreeDistribution,
    TruncatedDistribution,
    EmpiricalDegreeDistribution,
)
from repro.distributions.pareto import DiscretePareto, ContinuousPareto
from repro.distributions.extra import (
    GeometricDegree,
    ZipfDegree,
    PoissonDegree,
    LogNormalDegree,
)
from repro.distributions.truncation import (
    linear_truncation,
    root_truncation,
    power_truncation,
)
from repro.distributions.sampling import sample_degree_sequence

__all__ = [
    "DegreeDistribution",
    "TruncatedDistribution",
    "EmpiricalDegreeDistribution",
    "DiscretePareto",
    "ContinuousPareto",
    "GeometricDegree",
    "ZipfDegree",
    "PoissonDegree",
    "LogNormalDegree",
    "linear_truncation",
    "root_truncation",
    "power_truncation",
    "sample_degree_sequence",
]
