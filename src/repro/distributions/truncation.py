"""Truncation schedules ``t_n`` (paper sections 1.2 and 3.1).

The paper builds ``F_n(x) = F(x)/F(t_n)`` with a monotonically increasing
``t_n -> inf``, and studies two named schedules:

* **linear** truncation, ``t_n = n - 1`` -- the largest value for which the
  degree sequence can still be graphic; produces *unconstrained* graphs
  whenever ``F`` is heavy enough (Definition 1 can fail).
* **root** truncation, ``t_n = sqrt(n)`` -- deterministically enforces
  ``L_n <= sqrt(n)`` so the edge-probability model (10) stays a
  probability; these graphs are AMRC by construction.

A generic ``t_n = n^c`` power schedule is included for experiments around
Proposition 3 (``P(L_n > n^c) -> 0`` iff ``E[D^(1/c)] < inf``).
"""

from __future__ import annotations


def linear_truncation(n: int) -> int:
    """``t_n = n - 1`` (the graphic upper bound for simple graphs)."""
    if n < 2:
        raise ValueError(f"need n >= 2 for linear truncation, got {n}")
    return n - 1


def root_truncation(n: int) -> int:
    """``t_n = floor(sqrt(n))``; guarantees ``L_n <= sqrt(n)`` (AMRC)."""
    if n < 1:
        raise ValueError(f"need n >= 1 for root truncation, got {n}")
    t = int(n**0.5)
    # guard against floating-point undershoot, e.g. isqrt semantics
    while (t + 1) * (t + 1) <= n:
        t += 1
    while t * t > n:
        t -= 1
    return max(t, 1)


def power_truncation(c: float):
    """Return the schedule ``t_n = floor(n^c)`` for ``0 < c <= 1``.

    ``c = 1/2`` recovers :func:`root_truncation`; ``c = 1`` is close to
    (but not identical with) :func:`linear_truncation`, which subtracts
    one to respect the simple-graph bound ``t_n <= n - 1``.
    """
    if not 0.0 < c <= 1.0:
        raise ValueError(f"power must be in (0, 1], got {c}")

    def schedule(n: int) -> int:
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        return max(min(int(n**c), n - 1 if n > 1 else 1), 1)

    schedule.__name__ = f"power_truncation_{c}"
    return schedule
