"""Discrete and continuous Pareto degree laws (paper section 7.1).

The paper starts from the continuous Pareto
``F*(x) = 1 - (1 + x/beta)^(-alpha)`` on ``[0, inf)`` and discretizes it by
rounding each generated value *up*, which yields

    ``F(x) = 1 - (1 + floor(x)/beta)^(-alpha)``

on the natural numbers. The evaluation keeps ``beta = 30 (alpha - 1)`` so
that ``E[D] ~= 30.5`` after discretization.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.distributions.base import DegreeDistribution


class DiscretePareto(DegreeDistribution):
    """``F(x) = 1 - (1 + floor(x)/beta)^(-alpha)`` on ``{1, 2, ...}``.

    Equivalently the law of ``ceil(X*)`` where ``X*`` is continuous
    Pareto(alpha, beta). Heavy-tailed with tail index ``alpha``:
    ``P(D > k) ~ (k/beta)^(-alpha)``, so ``E[D^p]`` is finite iff
    ``p < alpha``.
    """

    def __init__(self, alpha: float, beta: float):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.alpha = float(alpha)
        self.beta = float(beta)

    @classmethod
    def paper_parameterization(cls, alpha: float) -> "DiscretePareto":
        """The evaluation's ``beta = 30 (alpha - 1)`` convention.

        Keeps ``E[D]`` roughly constant (about 30.5) across ``alpha`` so
        that costs are comparable between tail indices. Requires
        ``alpha > 1``.
        """
        if alpha <= 1:
            raise ValueError(
                "paper parameterization beta = 30 (alpha - 1) needs "
                f"alpha > 1, got {alpha}")
        return cls(alpha, 30.0 * (alpha - 1.0))

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        fl = np.floor(x)
        val = 1.0 - np.power(1.0 + np.maximum(fl, 0.0) / self.beta,
                             -self.alpha)
        return np.where(fl < 1.0, 0.0, val)

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        fl = np.floor(x)
        val = np.power(1.0 + np.maximum(fl, 0.0) / self.beta, -self.alpha)
        return np.where(fl < 1.0, 1.0, val)

    def pmf(self, k):
        k = np.asarray(k, dtype=float)
        valid = k >= 1.0
        km1 = np.where(valid, k - 1.0, 0.0)
        val = (np.power(1.0 + km1 / self.beta, -self.alpha)
               - np.power(1.0 + np.where(valid, k, 1.0) / self.beta,
                          -self.alpha))
        return np.where(valid & (k == np.floor(k)), val, 0.0)

    def quantile(self, u):
        u = np.asarray(u, dtype=float)
        if np.any((u < 0.0) | (u > 1.0)):
            raise ValueError("quantile argument must be in [0, 1]")
        # smallest integer k with F(k) >= u:
        #   k >= beta * ((1 - u)^(-1/alpha) - 1)
        with np.errstate(divide="ignore", over="ignore"):
            raw = self.beta * (np.power(1.0 - u, -1.0 / self.alpha) - 1.0)
        ks = np.maximum(np.ceil(raw - 1e-12), 1.0)
        result = np.where(np.isinf(raw), np.inf, ks)
        if result.ndim == 0:
            val = float(result)
            return math.inf if math.isinf(val) else int(val)
        return result

    def mean(self, **_ignored) -> float:
        """``E[D] = beta^alpha * zeta(alpha, beta)`` (Hurwitz zeta).

        Derivation: ``E[D] = sum_{k>=0} P(D > k)
        = sum_{k>=0} (1 + k/beta)^(-alpha)``. Infinite for
        ``alpha <= 1``.
        """
        if self.alpha <= 1.0:
            return math.inf
        return float(self.beta**self.alpha
                     * special.zeta(self.alpha, self.beta))

    def moment(self, p: float, **kwargs) -> float:
        if p >= self.alpha:
            return math.inf
        if p == 1:
            return self.mean()
        if p == 2:
            return self.second_moment()
        return super().moment(p, **kwargs)

    def second_moment(self) -> float:
        """``E[D^2] = beta^alpha (2 zeta(a-1, b) + (1-2b) zeta(a, b))``.

        From ``E[D^2] = sum_{j>=0} (2j+1) P(D > j)`` with
        ``P(D > j) = (1 + j/beta)^(-alpha)`` and Hurwitz-zeta partial
        fractions. Finite iff ``alpha > 2``.
        """
        if self.alpha <= 2.0:
            return math.inf
        a, b = self.alpha, self.beta
        return float(b**a * (2.0 * special.zeta(a - 1.0, b)
                             + (1.0 - 2.0 * b) * special.zeta(a, b)))

    def to_continuous(self) -> "ContinuousPareto":
        """The continuous Pareto this law was discretized from."""
        return ContinuousPareto(self.alpha, self.beta)

    def __repr__(self) -> str:
        return f"DiscretePareto(alpha={self.alpha}, beta={self.beta})"


class ContinuousPareto:
    """``F*(x) = 1 - (1 + x/beta)^(-alpha)`` on ``[0, inf)``.

    Not a :class:`DegreeDistribution` (it is continuous); it exists for
    the continuous model (49) and for closed-form spread results,
    eq. (19).
    """

    def __init__(self, alpha: float, beta: float):
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        self.alpha = float(alpha)
        self.beta = float(beta)

    def cdf(self, x):
        """``F*(x) = 1 - (1 + x/beta)^(-alpha)`` for ``x >= 0``."""
        x = np.asarray(x, dtype=float)
        return np.where(x < 0.0, 0.0,
                        1.0 - np.power(1.0 + x / self.beta, -self.alpha))

    def pdf(self, x):
        """Density ``alpha/beta (1 + x/beta)^(-alpha-1)``."""
        x = np.asarray(x, dtype=float)
        val = (self.alpha / self.beta
               * np.power(1.0 + x / self.beta, -self.alpha - 1.0))
        return np.where(x < 0.0, 0.0, val)

    def quantile(self, u):
        """Analytic inverse: ``beta ((1-u)^(-1/alpha) - 1)``."""
        u = np.asarray(u, dtype=float)
        val = self.beta * (np.power(1.0 - u, -1.0 / self.alpha) - 1.0)
        return float(val) if val.ndim == 0 else val

    def mean(self) -> float:
        """``E[X] = beta / (alpha - 1)``; infinite for ``alpha <= 1``."""
        if self.alpha <= 1.0:
            return math.inf
        return self.beta / (self.alpha - 1.0)

    def partial_mean(self, x) -> float:
        """``int_0^x y dF*(y)`` in closed form.

        Integration by parts gives
        ``int_0^x y dF = E[X] - x (1+x/beta)^(-alpha)
        - int_x^inf (1+y/beta)^(-alpha) dy``
        = ``E[X] * J(x)`` with ``J`` from eq. (19). Only valid for
        ``alpha > 1``.
        """
        if self.alpha <= 1.0:
            raise ValueError("partial mean closed form needs alpha > 1")
        result = self.mean() * np.asarray(self.spread_cdf(x), dtype=float)
        return float(result) if result.ndim == 0 else result

    def spread_cdf(self, x):
        """Eq. (19): ``J(x) = 1 - (beta + alpha x)/beta (1+x/beta)^-alpha``.

        The spread (size-biased) distribution of Pareto, with tail index
        ``alpha - 1`` -- one degree heavier than ``F`` itself.
        """
        x = np.asarray(x, dtype=float)
        val = (1.0 - (self.beta + self.alpha * x) / self.beta
               * np.power(1.0 + x / self.beta, -self.alpha))
        result = np.where(x < 0.0, 0.0, val)
        return float(result) if result.ndim == 0 else result

    def discretize(self) -> DiscretePareto:
        """The paper's round-up discretization (section 7.1)."""
        return DiscretePareto(self.alpha, self.beta)

    def __repr__(self) -> str:
        return f"ContinuousPareto(alpha={self.alpha}, beta={self.beta})"
