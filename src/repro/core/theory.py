"""Named closed-form limits under continuous Pareto (eqs. 22-24, 34-36,
44-45).

While :func:`repro.core.limits.limit_cost` evaluates any (method, map)
pair from the *discrete* law via Algorithm 2, the paper states several
limits in closed integral form against the continuous Pareto spread
(19). This module evaluates those expressions directly with adaptive
quadrature, giving an independent cross-check of the whole discrete
pipeline (the two agree up to the ~2% continuous-vs-discrete gap that
Table 5 quantifies):

=========  =====================================================
eq. (22)   ``c(T1, xi_A) = E[g(D) J(D)^2] / 2``
eq. (23)   ``c(T1, xi_D) = E[g(D) (1 - J(D))^2] / 2``  (= eq. 44)
eq. (24)   ``c(T2, xi_D) = E[g(D) J(D) (1 - J(D))]``
eq. (34)   ``c(T2, xi_RR) = E[g(D) (1 - J(D)^2)] / 4``
eq. (35)   ``c(E1, xi_D) = E[g(D) (1 - J(D)^2)] / 2``  (= eq. 45)
eq. (36)   ``c(E1, xi_RR) = E[g(D) (3 - J(D)^2)] / 8``
=========  =====================================================

Each returns ``math.inf`` when the defining integral diverges (the
finiteness thresholds of section 6.3).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import integrate

from repro.core.asymptotics import finiteness_threshold
from repro.distributions.pareto import ContinuousPareto


def _pareto_expectation(pareto: ContinuousPareto, factor,
                        threshold: float) -> float:
    """``E[(D^2 - D) * factor(J(D))]`` under continuous Pareto.

    ``factor`` maps the spread value ``J in [0, 1]`` to the h-derived
    multiplier; ``threshold`` is the tail index at which the integral
    starts converging.
    """
    if pareto.alpha <= threshold:
        return math.inf
    spread = pareto.spread_cdf

    def integrand(x):
        j = float(np.clip(spread(x), 0.0, 1.0))
        return (x * x - x) * float(factor(j)) * float(pareto.pdf(x))

    total = 0.0
    hi = 1.0
    lo = 0.0
    # adaptive log-segmented quadrature; extend until the tail piece is
    # negligible relative to the accumulated value
    while True:
        piece, __ = integrate.quad(integrand, lo, hi, limit=200)
        total += piece
        if hi > 1e4 and abs(piece) < 1e-10 * max(abs(total), 1.0):
            break
        if hi > 1e18:
            break
        lo, hi = hi, hi * 4.0
    return total


def t1_ascending_limit(pareto: ContinuousPareto) -> float:
    """Eq. (22): ``E[g(D) J(D)^2] / 2``; finite iff ``alpha > 2``."""
    return _pareto_expectation(pareto, lambda j: j * j / 2.0,
                               finiteness_threshold("T1", "ascending"))


def t1_descending_limit(pareto: ContinuousPareto) -> float:
    """Eqs. (23)/(44): ``E[g(D) (1-J)^2] / 2``; finite iff
    ``alpha > 4/3``."""
    return _pareto_expectation(
        pareto, lambda j: (1.0 - j) ** 2 / 2.0,
        finiteness_threshold("T1", "descending"))


def t2_descending_limit(pareto: ContinuousPareto) -> float:
    """Eq. (24): ``E[g(D) J (1-J)]``; finite iff ``alpha > 1.5``."""
    return _pareto_expectation(
        pareto, lambda j: j * (1.0 - j),
        finiteness_threshold("T2", "descending"))


def t2_round_robin_limit(pareto: ContinuousPareto) -> float:
    """Eq. (34): ``E[g(D) (1 - J^2)] / 4``; finite iff ``alpha > 1.5``."""
    return _pareto_expectation(
        pareto, lambda j: (1.0 - j * j) / 4.0,
        finiteness_threshold("T2", "rr"))


def e1_descending_limit(pareto: ContinuousPareto) -> float:
    """Eqs. (35)/(45): ``E[g(D) (1 - J^2)] / 2``; finite iff
    ``alpha > 1.5``."""
    return _pareto_expectation(
        pareto, lambda j: (1.0 - j * j) / 2.0,
        finiteness_threshold("E1", "descending"))


def e1_round_robin_limit(pareto: ContinuousPareto) -> float:
    """Eq. (36): ``E[g(D) (3 - J^2)] / 8``; finite iff ``alpha > 2``."""
    return _pareto_expectation(
        pareto, lambda j: (3.0 - j * j) / 8.0,
        finiteness_threshold("E1", "rr"))


#: Registry of the named limits by (method, map) pair.
NAMED_LIMITS = {
    ("T1", "ascending"): t1_ascending_limit,
    ("T1", "descending"): t1_descending_limit,
    ("T2", "descending"): t2_descending_limit,
    ("T2", "rr"): t2_round_robin_limit,
    ("E1", "descending"): e1_descending_limit,
    ("E1", "rr"): e1_round_robin_limit,
}


def named_limit(method: str, map_name: str,
                pareto: ContinuousPareto) -> float:
    """Evaluate one of the paper's named closed-form limits."""
    key = (method.upper(), map_name.lower())
    fn = NAMED_LIMITS.get(key)
    if fn is None:
        raise ValueError(
            f"no named closed form for {key}; available: "
            f"{sorted(NAMED_LIMITS)}")
    return fn(pareto)


def berry_et_al_limit(dist, t: int = 10**7) -> float:
    """Eq. (2): the prior-work [9] form of the T1 + descending limit.

    ``E[(Z1^2 - Z1) Z2 Z3 1_{min(Z2,Z3) > Z1}] / (2 E[D]^2)`` with
    iid ``Z_i ~ F``. Independence factorizes the indicator:
    ``E[Z 1_{Z > z}] = E[D] (1 - J(z))``, reducing (2) to a single sum
    over the support -- evaluated here *independently* of the spread
    machinery (tail sums straight from the survival function), so
    agreement with eq. (4) / :func:`t1_descending_limit` cross-checks
    the whole J pipeline. The paper's point that "(2) captures the same
    limit" but "(4) is much simpler" becomes an executable identity.

    ``dist`` is the *untruncated* discrete law; ``t`` bounds the
    support sum (the integrand's tail is negligible beyond it for any
    alpha > 4/3).
    """
    ks = np.arange(1, t + 1, dtype=np.float64)
    pmf = dist.pmf(ks)
    mean = float(np.sum(ks * pmf))
    # the truncated sum misses ~ t * sf(t) of E[Z 1_{Z>z}] mass; keep
    # that below 1% of the mean (sub-percent error on the limit)
    if float(dist.sf(float(t))) * t > 1e-2 * mean:
        raise ValueError(
            f"support bound t={t} too small: the mean has "
            f"non-negligible mass beyond it")
    # T(z) = E[Z 1_{Z > z}] via a reversed cumulative sum
    t_of_z = np.concatenate(
        [np.cumsum((ks * pmf)[::-1])[::-1][1:], [0.0]])
    g = ks * ks - ks
    return float(np.sum(pmf * g * t_of_z**2) / (2.0 * mean * mean))
