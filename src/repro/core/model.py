"""The cost models of section 7.1: discrete (50) and continuous (49).

Both evaluate

    ``E[c_n(M, theta)] ~ E[ g(D_n) h( xi( J_n(D_n) ) ) ]``      (30)

over the *truncated* degree law ``F_n``, with ``g(x) = x^2 - x``, ``h``
from Table 4, ``xi`` the permutation's limiting map, and ``J_n`` the
truncated spread:

* :func:`discrete_cost_model` -- eq. (50): the exact summation over the
  integer support ``1..t_n`` using the PMF ``p_i``. Linear time and
  O(1) extra space (vectorized here for speed); the reference model for
  every simulation table (6-11).
* :func:`continuous_cost_model` -- eq. (49): the Lebesgue-Stieltjes
  double integral under the continuous Pareto ``F*``; the paper shows it
  deviates 1.5-2% from the discrete truth (Table 5), and we reproduce
  both sides of that comparison.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import integrate

from repro.core.kernels import get_map
from repro.core.methods import get_method
from repro.core.weights import identity_weight
from repro.distributions.base import DegreeDistribution
from repro.distributions.pareto import ContinuousPareto


def discrete_cost_model(dist: DegreeDistribution, method,
                        limit_map="descending",
                        weight=identity_weight) -> float:
    """Eq. (50): exact discrete model over a finite-support degree law.

    Parameters
    ----------
    dist:
        The truncated law ``F_n`` (finite ``support_max = t_n``).
    method:
        Method name or :class:`~repro.core.methods.Method`.
    limit_map:
        The permutation's limiting map ``xi`` (name or
        :class:`~repro.core.kernels.LimitMap`).
    weight:
        The ``w(x)`` of the out-degree model (12); identity by default.

    Returns
    -------
    The modeled per-node cost ``E[c_n(M, theta_n)]``.
    """
    if not math.isfinite(dist.support_max):
        raise ValueError(
            "discrete model needs a truncated distribution; call "
            "dist.truncate(t_n) first (or use fast_cost_model for huge t)")
    method = get_method(method) if isinstance(method, str) else method
    limit_map = get_map(limit_map)
    t = int(dist.support_max)
    ks = np.arange(dist.support_min, t + 1, dtype=np.float64)
    p = dist.pmf(ks)
    wcum = np.cumsum(weight(ks) * p)
    total_weight = wcum[-1]
    if total_weight <= 0.0:
        raise ValueError("degenerate distribution: zero weighted mass")
    j = wcum / total_weight  # J_n at each support point (inclusive)
    g = ks * ks - ks
    h_vals = limit_map.expected_h(method.h, j)
    return float(np.sum(g * h_vals * p))


def continuous_cost_model(pareto: ContinuousPareto, t_n: float, method,
                          limit_map="descending",
                          weight=None,
                          segments_per_decade: int = 4) -> float:
    """Eq. (49): the continuous model under truncated continuous Pareto.

    ``F_n*(x) = F*(x) / F*(t_n)`` on ``[0, t_n]``; the spread argument is
    ``J_n(x) = int_0^x w dF* / int_0^{t_n} w dF*`` (the truncation
    normalization cancels). For the identity weight the inner integral
    uses the closed form (19); any other weight falls back to numeric
    cumulative integration.

    The outer integral is evaluated with ``scipy.integrate.quad`` over
    log-spaced segments, which keeps it accurate for ``t_n`` as large as
    ``1e17`` (Table 5 territory).
    """
    method = get_method(method) if isinstance(method, str) else method
    limit_map = get_map(limit_map)
    if t_n <= 0:
        raise ValueError(f"truncation point must be positive, got {t_n}")

    if weight is None or weight is identity_weight:
        if pareto.alpha <= 1.0:
            # E[X] infinite but partial means are finite; normalize by
            # the partial mean at t_n computed numerically
            partial = _numeric_partial(pareto, identity_weight)
            denom = partial(t_n)
            j_fn = lambda x: partial(x) / denom
        else:
            denom = pareto.partial_mean(t_n)
            j_fn = lambda x: pareto.partial_mean(x) / denom
    else:
        partial = _numeric_partial(pareto, weight)
        denom = partial(t_n)
        j_fn = lambda x: partial(x) / denom

    norm = float(pareto.cdf(t_n))

    def integrand(x):
        j = min(max(j_fn(x), 0.0), 1.0)
        h_val = float(limit_map.expected_h(method.h, np.float64(j)))
        return (x * x - x) * h_val * float(pareto.pdf(x)) / norm

    total = 0.0
    for lo, hi in _log_segments(t_n, segments_per_decade):
        value, __ = integrate.quad(integrand, lo, hi, limit=200)
        total += value
    return total


def _log_segments(t_n: float, per_decade: int):
    """Split ``[0, t_n]`` into quadrature-friendly log-spaced pieces."""
    edges = [0.0, min(1.0, t_n)]
    x = 1.0
    ratio = 10.0 ** (1.0 / per_decade)
    while x < t_n:
        x = min(x * ratio, t_n)
        edges.append(x)
    return list(zip(edges[:-1], edges[1:]))


def _numeric_partial(pareto: ContinuousPareto, weight):
    """Cached numeric ``x -> int_0^x w(y) dF*(y)`` via segment quads."""
    cache: dict[float, float] = {0.0: 0.0}

    def partial(x: float) -> float:
        x = float(x)
        if x in cache:
            return cache[x]
        known = max(k for k in cache if k <= x)
        value = cache[known]
        lo = known
        for seg_lo, seg_hi in _log_segments(x, 4):
            if seg_hi <= lo:
                continue
            a = max(seg_lo, lo)
            piece, __ = integrate.quad(
                lambda y: float(weight(np.float64(y))) * float(pareto.pdf(y)),
                a, seg_hi, limit=200)
            value += piece
        cache[x] = value
        return value

    return partial
