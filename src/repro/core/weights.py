"""Weight functions ``w(x)`` for the extended out-degree model (12).

The plain edge-probability model (11) over-estimates how many edges land
on high-degree nodes in unconstrained graphs (it effectively allows
duplicate links). Section 3.2 tempers this by weighting candidate
neighbors with a positive, monotonically non-decreasing ``w(x)``:

* ``w1(x) = x`` -- the identity, recovering (11);
* ``w2(x) = min(x, a)`` -- the capped weight studied in Table 11 with
  ``a = sqrt(m)``, which tracks simulations far better when the limit is
  infinite (``alpha = 1.2`` under linear truncation).

All weights here are vectorized callables with a ``name`` attribute for
reporting.
"""

from __future__ import annotations

import numpy as np


def identity_weight(x):
    """``w1(x) = x`` -- neighbors chosen in proportion to degree."""
    return np.asarray(x, dtype=float)


identity_weight.name = "w1(x)=x"


def capped_weight(a: float):
    """``w(x) = min(x, a)``: degree influence saturates at ``a``.

    The paper's ``w2`` uses ``a = sqrt(m)``, the largest degree at which
    the edge-probability model (10) can stay a probability.
    """
    if a <= 0:
        raise ValueError(f"cap must be positive, got {a}")

    def weight(x):
        return np.minimum(np.asarray(x, dtype=float), float(a))

    weight.name = f"w(x)=min(x,{a:g})"
    weight.cap = float(a)
    return weight
