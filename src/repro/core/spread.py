"""The spread distribution ``J(x)`` of renewal theory (section 4.1).

Lemma 2 shows the asymptotic fraction ``q`` of a node's neighbors with
smaller labels is governed by

    ``J(x) = (1 / E[w(D)]) * int_0^x w(y) dF(y)``        (18)

the *spread* (size-biased) distribution: the degree of the node hit by a
uniformly random point thrown onto intervals of lengths ``w(d_i)`` (the
inspection paradox). For ``w(x) = x`` it is the degree seen by a random
edge endpoint / random walk. Pareto spread has the closed form (19)
with a one-degree-heavier tail ``alpha - 1``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.weights import identity_weight
from repro.distributions.base import DegreeDistribution


class SpreadDistribution:
    """``J(x)`` for a degree law with finite support (e.g. truncated).

    Precomputes the cumulative weighted mass over the support so that
    lookups are ``O(log t)``. For the limiting (untruncated) Pareto use
    :func:`pareto_spread_cdf`, the closed form.
    """

    def __init__(self, dist: DegreeDistribution, weight=identity_weight):
        if not math.isfinite(dist.support_max):
            raise ValueError(
                "SpreadDistribution needs finite support; truncate the "
                "distribution first or use a closed form")
        self.dist = dist
        self.weight = weight
        t = int(dist.support_max)
        self._support = np.arange(dist.support_min, t + 1, dtype=np.int64)
        pmf = dist.pmf(self._support.astype(float))
        self._cum = np.cumsum(weight(self._support.astype(float)) * pmf)
        self._total = float(self._cum[-1])
        if self._total <= 0.0:
            raise ValueError("weighted mass is zero")

    @property
    def mean_weight(self) -> float:
        """``E[w(D)]`` over the (truncated) law."""
        return self._total

    def cdf(self, x):
        """``J(x) = P(S <= x)`` for the spread variable ``S``."""
        x = np.asarray(x, dtype=float)
        idx = np.searchsorted(self._support, np.floor(x), side="right")
        cum = np.concatenate([[0.0], self._cum])
        result = cum[idx] / self._total
        return float(result) if result.ndim == 0 else result

    def pmf(self, k):
        """``P(S = k) = w(k) P(D = k) / E[w(D)]``."""
        k = np.asarray(k, dtype=float)
        return self.weight(k) * self.dist.pmf(k) / self._total

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw spread-distributed degrees (size-biased sampling)."""
        u = rng.random(size) * self._total
        idx = np.searchsorted(self._cum, u, side="left")
        idx = np.clip(idx, 0, self._support.size - 1)
        return self._support[idx].copy()

    def __repr__(self) -> str:
        return (f"SpreadDistribution({self.dist!r}, "
                f"weight={getattr(self.weight, 'name', self.weight)})")


def pareto_spread_cdf(alpha: float, beta: float, x):
    """Eq. (19): the spread CDF of continuous Pareto with ``w(x) = x``.

    ``J(x) = 1 - (beta + alpha x) / beta * (1 + x / beta)^(-alpha)``.
    Valid for ``alpha > 1`` (finite ``E[D]``); its tail decays like
    ``x^(1 - alpha)``, one degree heavier than ``F`` itself.
    """
    if alpha <= 1.0:
        raise ValueError(
            f"spread requires finite E[D], i.e. alpha > 1; got {alpha}")
    x = np.asarray(x, dtype=float)
    val = (1.0 - (beta + alpha * x) / beta
           * np.power(1.0 + x / beta, -alpha))
    result = np.where(x < 0.0, 0.0, val)
    return float(result) if result.ndim == 0 else result
