"""Method registry: families, ``h`` functions, and cost decompositions.

Table 4 gives the fundamental ``h(x)`` shapes (with ``q`` the expected
fraction of a node's neighbors carrying smaller labels):

====== =====================  =============================
method h(x)                   interpretation
====== =====================  =============================
T1     x^2 / 2                out-out pairs
T2     x (1 - x)              in-out pairs
E1     x (2 - x) / 2          T1 + T2
E4     (x^2 + (1-x)^2) / 2    T1 + T3
====== =====================  =============================

The remaining methods follow from the equivalence classes of Figures
2/4: T3 mirrors T1 (``h(1-x)``), E2 duplicates E1's cost, E3/E5 mirror
E1, and E6 duplicates E4. LEI methods carry the cost of the vertex
iterator in Table 2. Every entry also records its *cost components* --
which of the three base formulas (7)-(9) sum to its exact cost -- so the
exact cost evaluator and the stochastic model provably agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np


def _h_t1(x):
    x = np.asarray(x, dtype=float)
    return x * x / 2.0


def _h_t2(x):
    x = np.asarray(x, dtype=float)
    return x * (1.0 - x)


def _h_t3(x):
    x = np.asarray(x, dtype=float)
    return (1.0 - x) ** 2 / 2.0


def _h_e1(x):
    x = np.asarray(x, dtype=float)
    return x * (2.0 - x) / 2.0


def _h_e3(x):
    x = np.asarray(x, dtype=float)
    return (1.0 - x * x) / 2.0


def _h_e4(x):
    x = np.asarray(x, dtype=float)
    return (x * x + (1.0 - x) ** 2) / 2.0


@dataclass(frozen=True)
class Method:
    """A triangle-listing method's analytic signature.

    Attributes
    ----------
    name:
        ``"T1"`` ... ``"L6"``.
    family:
        ``"vertex"``, ``"sei"``, or ``"lei"``.
    h:
        The Table-4 style function entering the unified model (14).
    components:
        Which base costs sum to the exact cost: a subset of
        ``("T1", "T2", "T3")`` with multiplicity (E1 = T1 + T2, etc.).
    equivalent_to:
        The canonical representative of the method's equivalence class
        under cost (Figures 2 and 4).
    """

    name: str
    family: str
    h: Callable[[np.ndarray], np.ndarray]
    components: Tuple[str, ...]
    equivalent_to: str

    def g(self, x):
        """``g(x) = x^2 - x`` -- shared by all methods (Prop. 4)."""
        x = np.asarray(x, dtype=float)
        return x * x - x

    def __repr__(self) -> str:
        return f"Method({self.name})"


METHODS: dict[str, Method] = {
    # vertex iterators (T4-T6 share cost with T1-T3; Figure 2's classes
    # under permutation reversal are {T1,T3,T4,T6} and {T2,T5})
    "T1": Method("T1", "vertex", _h_t1, ("T1",), "T1"),
    "T2": Method("T2", "vertex", _h_t2, ("T2",), "T2"),
    "T3": Method("T3", "vertex", _h_t3, ("T3",), "T1"),
    "T4": Method("T4", "vertex", _h_t1, ("T1",), "T1"),
    "T5": Method("T5", "vertex", _h_t2, ("T2",), "T2"),
    "T6": Method("T6", "vertex", _h_t3, ("T3",), "T1"),
    # scanning edge iterators: components = (local, remote), Table 1
    "E1": Method("E1", "sei", _h_e1, ("T1", "T2"), "E1"),
    "E2": Method("E2", "sei", _h_e1, ("T2", "T1"), "E1"),
    "E3": Method("E3", "sei", _h_e3, ("T3", "T2"), "E1"),
    "E4": Method("E4", "sei", _h_e4, ("T1", "T3"), "E4"),
    "E5": Method("E5", "sei", _h_e3, ("T2", "T3"), "E1"),
    "E6": Method("E6", "sei", _h_e4, ("T3", "T1"), "E4"),
    # lookup edge iterators: cost = the remote component only, Table 2
    "L1": Method("L1", "lei", _h_t2, ("T2",), "T2"),
    "L2": Method("L2", "lei", _h_t1, ("T1",), "T1"),
    "L3": Method("L3", "lei", _h_t2, ("T2",), "T2"),
    "L4": Method("L4", "lei", _h_t3, ("T3",), "T1"),
    "L5": Method("L5", "lei", _h_t3, ("T3",), "T1"),
    "L6": Method("L6", "lei", _h_t1, ("T1",), "T1"),
}

#: The four non-isomorphic techniques of Figure 5.
FUNDAMENTAL_METHODS: tuple[str, ...] = ("T1", "T2", "E1", "E4")


def get_method(name: str) -> Method:
    """Look up a method, accepting lower-case names."""
    method = METHODS.get(name.upper())
    if method is None:
        raise ValueError(
            f"unknown method {name!r}; choose from {sorted(METHODS)}")
    return method
