"""Glivenko-Cantelli machinery for functions of order statistics (§4.1).

The convergence engine behind every limit in the paper is the
L-estimator result (16):

    ``(1/n) sum_i g(A_ni) phi_n(i/n)  ->  int_0^1 g(F^{-1}(u)) phi(u) du``

with ``A_n`` the ascending order statistics of an i.i.d. sample and
``phi_n -> phi`` in the integrated sense (15). Lemma 1 is the partial-
sum special case (``phi = 1_{[0,u]}``), and Lemma 3 extends it to
admissible permutations.

This module provides both sides of (16) so the theorem can be
*demonstrated numerically*: the empirical L-statistic on sampled data,
and the limiting integral via quantile quadrature. The tests drive
convergence checks for several (g, phi) pairs, including the paper's
``g(x) = x^2 - x``.
"""

from __future__ import annotations

import numpy as np


def l_statistic(samples, g, phi) -> float:
    """The left side of (16): ``(1/n) sum g(A_ni) phi(i/n)``.

    ``samples`` is any i.i.d. sample (sorted internally); ``g`` and
    ``phi`` are vectorized callables.
    """
    a = np.sort(np.asarray(samples, dtype=float))
    n = a.size
    if n == 0:
        return 0.0
    positions = np.arange(1, n + 1, dtype=float) / n
    return float(np.mean(np.asarray(g(a), dtype=float)
                         * np.asarray(phi(positions), dtype=float)))


def l_statistic_limit(dist, g, phi, grid: int = 200_001) -> float:
    """The right side of (16): ``int_0^1 g(F^{-1}(u)) phi(u) du``.

    Midpoint quadrature through the quantile function; ``grid`` points
    control accuracy (the integrand is monotone-ish in the degree
    applications, so the midpoint rule converges quickly).
    """
    us = (np.arange(grid, dtype=float) + 0.5) / grid
    quantiles = np.asarray(dist.quantile(us), dtype=float)
    return float(np.mean(np.asarray(g(quantiles), dtype=float)
                         * np.asarray(phi(us), dtype=float)))


def partial_sum(samples, g, u: float) -> float:
    """Lemma 1's left side: ``(1/n) sum_{i <= nu} g(A_ni)``."""
    if not 0.0 <= u <= 1.0:
        raise ValueError(f"u must be in [0, 1], got {u}")
    a = np.sort(np.asarray(samples, dtype=float))
    n = a.size
    k = int(np.floor(n * u))
    if k == 0:
        return 0.0
    return float(np.sum(np.asarray(g(a[:k]), dtype=float))) / n


def partial_sum_limit(dist, g, u: float, grid: int = 200_001) -> float:
    """Lemma 1's right side: ``int_0^u g(F^{-1}(x)) dx``."""
    if not 0.0 <= u <= 1.0:
        raise ValueError(f"u must be in [0, 1], got {u}")
    if u == 0.0:
        return 0.0
    xs = u * (np.arange(grid, dtype=float) + 0.5) / grid
    quantiles = np.asarray(dist.quantile(xs), dtype=float)
    return u * float(np.mean(np.asarray(g(quantiles), dtype=float)))


def permuted_l_statistic(samples, theta, g, h) -> float:
    """Lemma 3's left side: ``(1/n) sum g(d_i(theta)) h(i/n)``.

    ``theta`` maps ascending rank to label (0-based); the node at label
    ``i`` contributes ``g(A_{theta^{-1}(i)}) h((i+1)/n)``.
    """
    a = np.sort(np.asarray(samples, dtype=float))
    theta = np.asarray(theta, dtype=np.int64)
    n = a.size
    if theta.shape != (n,):
        raise ValueError("theta must have one entry per sample")
    positions = (theta + 1.0) / n
    return float(np.mean(np.asarray(g(a), dtype=float)
                         * np.asarray(h(positions), dtype=float)))


def permuted_l_statistic_limit(dist, limit_map, g, h,
                               grid: int = 100_001) -> float:
    """Lemma 3's right side: ``E[g(F^{-1}(U)) h(xi(U))]``."""
    us = (np.arange(grid, dtype=float) + 0.5) / grid
    quantiles = np.asarray(dist.quantile(us), dtype=float)
    h_vals = np.asarray(limit_map.expected_h(h, us), dtype=float)
    return float(np.mean(np.asarray(g(quantiles), dtype=float) * h_vals))
