"""Asymptotic cost limits (Theorems 1-2 and section 5.3).

Theorem 2: for an admissible permutation sequence with limiting map
``xi``,

    ``c(M, xi) = lim_n E[c_n(M, theta_n) | D_n] = E[g(D) h(xi(J(D)))]``

with ``J`` the spread of the *untruncated* law ``F``. The limit is
independent of the truncation schedule (linear and root truncation
converge to the same point), which is why :func:`limit_cost` evaluates
the model at a single huge truncation point via Algorithm 2 and refines
until two successive points agree.

Special cases provided in closed form where the paper states them:

* ``E[h(U)]`` constants of eq. (31): 1/6 for vertex iterators, 1/3 for
  both edge iterators (:func:`expected_h_uniform`).
* The uniform-orientation cost ``E[D^2 - D] * E[h(U)]``
  (:func:`uniform_orientation_cost`) and the no-orientation baselines
  ``E[D^2 - D] / 2`` (vertex) and ``E[D^2 - D]`` (edge)
  (:func:`no_orientation_cost`) -- the "3x saving" comparison.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from repro.core.fastmodel import fast_cost_model
from repro.core.kernels import get_map
from repro.core.methods import get_method
from repro.core.weights import identity_weight
from repro.distributions.base import DegreeDistribution


def limit_cost(base_dist: DegreeDistribution, method,
               limit_map="descending", weight=identity_weight,
               t_start: float = 1e8, t_max: float = 1e16,
               eps: float = 1e-5, rtol: float = 1e-4) -> float:
    """``c(M, xi)``: the ``n -> inf`` limit of the expected cost.

    Evaluates Algorithm 2 at geometrically growing truncation points
    until two successive values agree to ``rtol``; returns ``math.inf``
    when the values keep growing past ``t_max`` (the infinite-cost
    regimes below the finiteness thresholds, section 6.3).
    """
    method = get_method(method) if isinstance(method, str) else method
    limit_map = get_map(limit_map)
    t = t_start
    values: list[float] = []
    while t <= t_max:
        value = fast_cost_model(base_dist.truncate(int(t)), method,
                                limit_map, weight, eps=eps)
        if values and abs(value - values[-1]) <= rtol * max(abs(value), 1.0):
            return value
        values.append(value)
        t *= 100.0
    # No convergence within t_max. The evaluation points are geometric
    # in t, so the increments per step discriminate the two regimes:
    # a finite limit approached like L - c t^(-gamma) has increments
    # shrinking by the fixed factor rho = 100^(-gamma) < 1 (allowing a
    # geometric tail extrapolation that recovers L), while a divergent
    # cost growing like t^gamma (or log t, at the threshold itself) has
    # non-shrinking increments.
    if len(values) < 3:
        return values[-1]
    d1 = values[-2] - values[-3]
    d2 = values[-1] - values[-2]
    if d2 <= 0.0 or d1 <= 0.0:
        return values[-1]
    rho = d2 / d1
    if rho >= 0.95:
        return math.inf
    return values[-1] + d2 * rho / (1.0 - rho)


#: Exact ``E[h(U)]`` of eq. (31), per fundamental method.
_EXPECTED_H_UNIFORM = {
    "T1": Fraction(1, 6),   # int x^2/2
    "T2": Fraction(1, 6),   # int x(1-x)
    "T3": Fraction(1, 6),   # int (1-x)^2/2
    "E1": Fraction(1, 3),   # int x(2-x)/2
    "E2": Fraction(1, 3),
    "E3": Fraction(1, 3),   # int (1-x^2)/2
    "E4": Fraction(1, 3),   # int (x^2+(1-x)^2)/2
    "E5": Fraction(1, 3),
    "E6": Fraction(1, 3),
    "L1": Fraction(1, 6),
    "L2": Fraction(1, 6),
    "L3": Fraction(1, 6),
    "L4": Fraction(1, 6),
    "L5": Fraction(1, 6),
    "L6": Fraction(1, 6),
    "T4": Fraction(1, 6),
    "T5": Fraction(1, 6),
    "T6": Fraction(1, 6),
}


def expected_h_uniform(method) -> Fraction:
    """``E[h(U)]`` as an exact rational (1/6 vertex-like, 1/3 edge)."""
    name = method if isinstance(method, str) else method.name
    try:
        return _EXPECTED_H_UNIFORM[name.upper()]
    except KeyError:
        raise ValueError(f"unknown method {name!r}") from None


def uniform_orientation_cost(base_dist: DegreeDistribution,
                             method) -> float:
    """Eq. (31): ``c(M, xi_U) = E[D^2 - D] * E[h(U)]``.

    Infinite whenever ``E[D^2] = inf`` (Pareto ``alpha <= 2``).
    """
    second = base_dist.moment(2)
    if math.isinf(second):
        return math.inf
    g_mean = second - base_dist.mean()
    return g_mean * float(expected_h_uniform(method))


def no_orientation_cost(base_dist: DegreeDistribution,
                        family: str = "vertex") -> float:
    """The un-oriented baseline of section 5.3.

    Without any orientation a vertex iterator checks every unordered
    neighbor pair (``E[D^2 - D] / 2``) and an edge iterator scans both
    full lists per edge (``E[D^2 - D]``); orientation with even a random
    permutation divides these by 3 (each triangle stops being counted
    three times).
    """
    if family not in ("vertex", "sei", "edge"):
        raise ValueError(
            f"unknown family {family!r}; use 'vertex' or 'edge'")
    second = base_dist.moment(2)
    if math.isinf(second):
        return math.inf
    g_mean = second - base_dist.mean()
    if family == "vertex":
        return g_mean / 2.0
    return g_mean


def limit_cost_table(base_dist: DegreeDistribution,
                     methods=("T1", "T2", "E1", "E4"),
                     maps=("ascending", "descending", "rr", "crr",
                           "uniform"),
                     **kwargs) -> dict:
    """All (method, map) limits as a nested dict -- the section 5/6 grid."""
    table: dict = {}
    for m in methods:
        row = {}
        for name in maps:
            row[name] = limit_cost(base_dist, m, name, **kwargs)
        table[m] = row
    return table


def spread_from_limit(base_dist: DegreeDistribution, x,
                      weight=identity_weight,
                      t: float = 1e12) -> float:
    """``J(x)`` of the untruncated law, eq. (18), evaluated numerically.

    Uses blockwise summation with geometric jumps (the Algorithm 2
    trick) so heavy tails with finite ``E[w(D)]`` converge quickly.
    """
    t = int(t)
    num = _weighted_partial(base_dist, weight, int(x), t)
    den = _weighted_partial(base_dist, weight, t, t)
    if den <= 0:
        raise ValueError("zero weighted mass")
    return min(num / den, 1.0)


def _weighted_partial(dist, weight, x: int, t: int,
                      eps: float = 1e-5) -> float:
    """Blockwise ``sum_{k<=x} w(k) pmf(k)`` with geometric jumps.

    Vectorized over the (cached) block-start grid of Algorithm 2; block
    masses use sf differences, immune to the CDF's float64 saturation
    at 1.
    """
    if x < dist.support_min:
        return 0.0
    from repro.core.fastmodel import _block_starts
    starts = _block_starts(int(x), eps)
    jumps = np.maximum(np.ceil(eps * starts), 1.0)
    ends = np.minimum(starts + jumps - 1.0, float(x))
    mass = np.maximum(dist.sf(starts - 1.0) - dist.sf(ends), 0.0)
    return float(np.sum(np.asarray(weight(starts), dtype=float) * mass))
