"""Exact per-node cost ``c_n(M, theta)`` from directed degrees.

Eqs. (7)-(9) express vertex-iterator cost purely through the oriented
degrees ``X_i`` (out) and ``Y_i`` (in):

* ``c_n(T1) = (1/n) sum X_i (X_i - 1) / 2``
* ``c_n(T2) = (1/n) sum X_i Y_i``
* ``c_n(T3) = (1/n) sum Y_i (Y_i - 1) / 2``

and Proposition 2 (+ Table 1/2) decomposes every SEI/LEI cost into sums
of these. This module evaluates them exactly, which is how the
simulation harness measures cost without running a lister (the listers'
instrumented ``ops`` equal these formulas -- a property the test suite
checks on random graphs).
"""

from __future__ import annotations

import numpy as np

from repro.core.methods import get_method


def cost_t1(out_degrees) -> float:
    """Total T1 ops: ``sum X (X - 1) / 2`` (candidate out-out pairs)."""
    x = np.asarray(out_degrees, dtype=np.float64)
    return float(np.sum(x * (x - 1.0)) / 2.0)


def cost_t2(out_degrees, in_degrees) -> float:
    """Total T2 ops: ``sum X Y`` (in-out candidate pairs)."""
    x = np.asarray(out_degrees, dtype=np.float64)
    y = np.asarray(in_degrees, dtype=np.float64)
    return float(np.sum(x * y))


def cost_t3(in_degrees) -> float:
    """Total T3 ops: ``sum Y (Y - 1) / 2`` (candidate in-in pairs)."""
    y = np.asarray(in_degrees, dtype=np.float64)
    return float(np.sum(y * (y - 1.0)) / 2.0)


_BASE = {
    "T1": lambda x, y: cost_t1(x),
    "T2": cost_t2,
    "T3": lambda x, y: cost_t3(y),
}


def total_cost(method_name: str, out_degrees, in_degrees) -> float:
    """Total operation count ``n * c_n(M, theta)`` for any method."""
    method = get_method(method_name)
    return float(sum(_BASE[c](out_degrees, in_degrees)
                     for c in method.components))


def component_ops(out_degrees, in_degrees) -> dict[str, int]:
    """Integer-exact totals of the three base costs (7)-(9).

    One pass over the degree arrays yields all three sums; every
    method's exact ``ops`` is then a table lookup
    (:func:`total_ops`), which is how the vectorized engine reports
    the paper's cost metric in closed form and how multi-method
    sweeps avoid re-reducing the same arrays per method.
    """
    x = np.asarray(out_degrees, dtype=np.int64)
    y = np.asarray(in_degrees, dtype=np.int64)
    return {
        "T1": int(np.sum(x * (x - 1)) // 2),
        "T2": int(np.sum(x * y)),
        "T3": int(np.sum(y * (y - 1)) // 2),
    }


def total_ops(method_name: str, out_degrees, in_degrees) -> int:
    """Integer-exact ``ops`` for any method (the listers' counter).

    Equals :func:`total_cost` but stays in int64 arithmetic, so it can
    be compared ``==`` against an instrumented lister's ``ops``.
    """
    comps = component_ops(out_degrees, in_degrees)
    return sum(comps[c] for c in get_method(method_name).components)


def per_node_cost_many(method_names, out_degrees, in_degrees
                       ) -> dict[str, float]:
    """``c_n`` for several methods sharing one pass over the degrees.

    The harness/sweep hot path evaluates the same oriented-degree
    arrays under many methods; the three base reductions dominate, so
    computing them once and recombining per method is the cheap way.
    """
    n = np.asarray(out_degrees).size
    if n == 0:
        return {name: 0.0 for name in method_names}
    comps = component_ops(out_degrees, in_degrees)
    return {name: sum(comps[c]
                      for c in get_method(name).components) / n
            for name in method_names}


def per_node_cost(method_name: str, out_degrees, in_degrees) -> float:
    """``c_n(M, theta)``: eq. (1) evaluated exactly from the degrees."""
    n = np.asarray(out_degrees).size
    if n == 0:
        return 0.0
    return total_cost(method_name, out_degrees, in_degrees) / n


def method_cost(oriented, method_name: str) -> float:
    """``c_n(M, theta)`` of an :class:`OrientedGraph`."""
    return per_node_cost(method_name, oriented.out_degrees,
                         oriented.in_degrees)


_BASE_PROFILE = {
    "T1": lambda x, y: x * (x - 1.0) / 2.0,
    "T2": lambda x, y: x * y,
    "T3": lambda x, y: y * (y - 1.0) / 2.0,
}


def per_node_profile(method_name: str, out_degrees,
                     in_degrees) -> np.ndarray:
    """The summand of eq. (1) per node: ``f(X_i, Y_i)`` as an array.

    Exposes *where* the cost lives -- e.g. under the ascending
    permutation T1's profile is concentrated on the hub labels, under
    descending it spreads across the mid-degree mass. Summing the
    profile reproduces :func:`total_cost` exactly.
    """
    method = get_method(method_name)
    x = np.asarray(out_degrees, dtype=np.float64)
    y = np.asarray(in_degrees, dtype=np.float64)
    profile = np.zeros_like(x)
    for component in method.components:
        profile += _BASE_PROFILE[component](x, y)
    return profile


def cost_concentration(method_name: str, out_degrees, in_degrees,
                       top_fraction: float = 0.01) -> float:
    """Share of total cost carried by the costliest ``top_fraction``
    of nodes -- a skew diagnostic for the heavy-tail regimes."""
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    profile = per_node_profile(method_name, out_degrees, in_degrees)
    total = profile.sum()
    if total == 0.0:
        return 0.0
    k = max(int(round(top_fraction * profile.size)), 1)
    top = np.sort(profile)[-k:]
    return float(top.sum() / total)
