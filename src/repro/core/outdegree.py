"""The expected out-degree model: eqs. (10)-(13) and Lemma 2.

Section 3 models the post-orientation out-degree ``X_i(theta)`` of the
node in label position ``i``:

* eq. (10): edge probability ``p_ij ~ d_i d_j / (2m)``;
* eq. (11): ``E[X_i | D_n] ~ d_i * sum_{j<i} d_j / (2m - d_i)``
  (self-loop-corrected denominator);
* eq. (12): the weighted generalization with a positive non-decreasing
  ``w(x)`` that tempers hub over-counting;
* eq. (13): ``q_i = E[X_i | D_n] / d_i``, the expected fraction of
  smaller-labeled neighbors;
* Lemma 2: under the ascending permutation, ``q_{ceil(un)}`` converges
  to ``J(F^{-1}(u))`` -- the bridge between the combinatorics and the
  spread distribution.

These functions let the model be validated *layer by layer*: per-node
expected out-degrees against graph ensembles, then q against J, then
the cost against eq. (14).
"""

from __future__ import annotations

import numpy as np

from repro.core.weights import identity_weight


def edge_probability(degrees, i: int, j: int) -> float:
    """Eq. (10): ``p_ij ~ d_i d_j / (2m)`` (clipped to 1).

    ``degrees`` is the degree sequence of the *relabeled* graph (index
    = label). Accurate when the graph is AMRC (Definition 1); for
    unconstrained graphs the clip is where the model starts lying,
    which Table 11 investigates.
    """
    degrees = np.asarray(degrees, dtype=float)
    two_m = float(degrees.sum())
    if two_m == 0.0:
        return 0.0
    return min(degrees[i] * degrees[j] / two_m, 1.0)


def expected_out_degrees(label_degrees, weight=identity_weight
                         ) -> np.ndarray:
    """Eqs. (11)-(12): ``E[X_i | D_n]`` for every label position.

    ``label_degrees[i]`` is the total degree of the node holding label
    ``i`` (i.e. ``d_i(theta)``). With the identity weight this is
    exactly (11); any other ``w`` gives (12):

        ``E[X_i] ~ d_i * sum_{j < i} w(d_j) / (sum_k w(d_k) - w(d_i))``
    """
    d = np.asarray(label_degrees, dtype=float)
    w = np.asarray(weight(d), dtype=float)
    total_w = float(w.sum())
    prefix = np.concatenate([[0.0], np.cumsum(w)[:-1]])  # sum_{j<i} w_j
    denom = total_w - w
    out = np.zeros_like(d)
    positive = denom > 0
    out[positive] = d[positive] * prefix[positive] / denom[positive]
    return out


def expected_q(label_degrees, weight=identity_weight) -> np.ndarray:
    """Eq. (13): ``q_i = E[X_i | D_n] / d_i`` per label position."""
    d = np.asarray(label_degrees, dtype=float)
    x = expected_out_degrees(label_degrees, weight)
    q = np.zeros_like(d)
    positive = d > 0
    q[positive] = x[positive] / d[positive]
    return np.clip(q, 0.0, 1.0)


def unified_cost_from_degrees(method, label_degrees,
                              weight=identity_weight) -> float:
    """Eq. (14): ``(1/n) sum g(d_i) h(q_i)`` -- Proposition 4's model.

    The per-degree-sequence version of the cost model: everything is
    computed from the (relabeled) degree sequence, no distribution and
    no graph required.
    """
    from repro.core.methods import get_method
    method = get_method(method) if isinstance(method, str) else method
    d = np.asarray(label_degrees, dtype=float)
    if d.size == 0:
        return 0.0
    q = expected_q(label_degrees, weight)
    return float(np.mean((d * d - d) * method.h(q)))


def lemma2_profile(dist, n: int, us, weight=identity_weight) -> np.ndarray:
    """Lemma 2's finite-``n`` side: ``q_{ceil(un)}`` under ascending.

    Builds the *expected* ascending-ordered degree profile from the
    distribution's quantiles (the deterministic skeleton of ``A_n``)
    and evaluates ``q`` at positions ``u``. As ``n`` grows this
    converges to ``J(F^{-1}(u))``, which the tests verify against the
    spread distribution.
    """
    us = np.asarray(us, dtype=float)
    positions = (np.arange(n, dtype=float) + 0.5) / n
    skeleton = np.asarray(dist.quantile(positions), dtype=float)
    q = expected_q(skeleton, weight)
    idx = np.minimum(np.ceil(us * n).astype(int) - 1, n - 1)
    idx = np.maximum(idx, 0)
    return q[idx]
