"""Analytical core: cost formulas, models, limits, and optimality.

This subpackage is the paper's mathematics:

* :mod:`repro.core.methods` -- the method registry with each
  algorithm's ``h`` function (Table 4) and cost decomposition
  (Tables 1-2).
* :mod:`repro.core.costs` -- exact per-node cost ``c_n(M, theta)`` from
  directed degrees, eqs. (7)-(9) and Proposition 2.
* :mod:`repro.core.weights` -- the weight functions ``w(x)`` of
  eq. (12): identity and ``min(x, a)``.
* :mod:`repro.core.spread` -- the spread distribution ``J(x)``,
  eq. (18), with the Pareto closed form (19).
* :mod:`repro.core.kernels` -- limiting random maps ``xi(u)`` and
  measure-preserving kernels (Definitions 2-5, Propositions 6-7).
* :mod:`repro.core.model` -- the discrete cost model (50) and the
  continuous model (49).
* :mod:`repro.core.fastmodel` -- Algorithm 2 (geometric jumping).
* :mod:`repro.core.limits` -- closed-form limits (20)-(25), (29),
  (31)-(36), (44)-(45).
* :mod:`repro.core.asymptotics` -- finiteness thresholds and the
  scaling rates (46)-(48).
* :mod:`repro.core.optimality` -- Algorithm 1 and the optimal/worst
  permutation per method (Theorems 3-5, Corollaries 1-3).
"""

from repro.core.methods import Method, METHODS, FUNDAMENTAL_METHODS
from repro.core.costs import (
    method_cost,
    per_node_cost,
    total_cost,
    cost_t1,
    cost_t2,
    cost_t3,
)
from repro.core.weights import identity_weight, capped_weight
from repro.core.spread import SpreadDistribution, pareto_spread_cdf
from repro.core.kernels import (
    LimitMap,
    AscendingMap,
    DescendingMap,
    UniformMap,
    RoundRobinMap,
    ComplementaryRoundRobinMap,
    reverse_map,
    complement_map,
    empirical_kernel,
    MAPS,
)
from repro.core.model import discrete_cost_model, continuous_cost_model
from repro.core.fastmodel import fast_cost_model
from repro.core.limits import (
    limit_cost,
    uniform_orientation_cost,
    no_orientation_cost,
    expected_h_uniform,
)
from repro.core.asymptotics import (
    finiteness_threshold,
    is_cost_finite,
    h_tail_exponent,
    t1_scaling_rate,
    e1_scaling_rate,
)
from repro.core.optimality import (
    optimal_map,
    worst_map,
    opt_permutation_ranks,
    cost_functional,
)
from repro.core.decision import (
    MethodDecision,
    PAPER_SPEED_RATIO,
    cost_ratio_w,
    decide_on_graph,
    decide_in_limit,
)
from repro.core.outdegree import (
    edge_probability,
    expected_out_degrees,
    expected_q,
    unified_cost_from_degrees,
    lemma2_profile,
)
from repro.core.theory import named_limit, NAMED_LIMITS, berry_et_al_limit
from repro.core.crossover import crossover_alpha, limit_cost_ratio
from repro.core.order_statistics import (
    l_statistic,
    l_statistic_limit,
    partial_sum,
    partial_sum_limit,
    permuted_l_statistic,
    permuted_l_statistic_limit,
)

__all__ = [
    "Method",
    "METHODS",
    "FUNDAMENTAL_METHODS",
    "method_cost",
    "per_node_cost",
    "total_cost",
    "cost_t1",
    "cost_t2",
    "cost_t3",
    "identity_weight",
    "capped_weight",
    "SpreadDistribution",
    "pareto_spread_cdf",
    "LimitMap",
    "AscendingMap",
    "DescendingMap",
    "UniformMap",
    "RoundRobinMap",
    "ComplementaryRoundRobinMap",
    "reverse_map",
    "complement_map",
    "empirical_kernel",
    "MAPS",
    "discrete_cost_model",
    "continuous_cost_model",
    "fast_cost_model",
    "limit_cost",
    "uniform_orientation_cost",
    "no_orientation_cost",
    "expected_h_uniform",
    "finiteness_threshold",
    "is_cost_finite",
    "h_tail_exponent",
    "t1_scaling_rate",
    "e1_scaling_rate",
    "optimal_map",
    "worst_map",
    "opt_permutation_ranks",
    "cost_functional",
    "MethodDecision",
    "PAPER_SPEED_RATIO",
    "cost_ratio_w",
    "decide_on_graph",
    "decide_in_limit",
    "edge_probability",
    "expected_out_degrees",
    "expected_q",
    "unified_cost_from_degrees",
    "lemma2_profile",
    "named_limit",
    "NAMED_LIMITS",
    "berry_et_al_limit",
    "crossover_alpha",
    "limit_cost_ratio",
    "l_statistic",
    "l_statistic_limit",
    "partial_sum",
    "partial_sum_limit",
    "permuted_l_statistic",
    "permuted_l_statistic_limit",
]
