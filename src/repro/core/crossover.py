"""Crossover analysis: where SEI stops paying for itself (section 6.3).

For ``alpha > 1.5`` both T1 and E1 have finite limits, and the winner
depends on the hardware speed ratio (Table 3): SEI wins iff the cost
ratio ``c(E1, xi_D) / c(T1, xi_D)`` is below it. The ratio *diverges*
as ``alpha`` decreases to 1.5 (E1's limit blows up first), so for every
speed ratio ``R`` there is a crossover tail index ``alpha*(R)``: below
it the hash-based T1 wins even on SIMD hardware, above it SEI does.
This module locates ``alpha*`` by bisection on the limit-cost ratio --
turning section 6.3's qualitative discussion into a computable curve.
"""

from __future__ import annotations

import math

from repro.core.decision import PAPER_SPEED_RATIO
from repro.core.limits import limit_cost
from repro.distributions.pareto import DiscretePareto


def limit_cost_ratio(alpha: float, beta: float | None = None,
                     **limit_kwargs) -> float:
    """``c(E1, xi_D) / c(T1, xi_D)`` in the limit for Pareto(alpha).

    ``math.inf`` inside the provable window ``alpha in (4/3, 1.5]``;
    NaN below 4/3 (both diverge).
    """
    if beta is None:
        beta = 30.0 * (alpha - 1.0)
    dist = DiscretePareto(alpha, beta)
    limit_kwargs.setdefault("eps", 1e-4)
    limit_kwargs.setdefault("t_max", 1e14)
    t1 = limit_cost(dist, "T1", "descending", **limit_kwargs)
    e1 = limit_cost(dist, "E1", "descending", **limit_kwargs)
    if math.isinf(t1) and math.isinf(e1):
        return float("nan")
    if math.isinf(e1):
        return math.inf
    return e1 / t1


def crossover_alpha(speed_ratio: float = PAPER_SPEED_RATIO,
                    lo: float = 1.501, hi: float = 3.0,
                    tol: float = 1e-3, **limit_kwargs) -> float:
    """The tail index where the E1/T1 limit ratio equals ``speed_ratio``.

    Bisection over ``[lo, hi]``; requires the ratio to straddle
    ``speed_ratio`` on the bracket (it is decreasing in alpha, from
    infinity at 1.5 down to the light-tail plateau ~2-4). Returns
    ``lo`` if even ``lo`` is already below the ratio's reach -- i.e.
    SEI wins everywhere in the bracket.
    """
    if speed_ratio <= 0:
        raise ValueError("speed ratio must be positive")
    ratio_hi = limit_cost_ratio(hi, **limit_kwargs)
    if ratio_hi >= speed_ratio:
        raise ValueError(
            f"ratio at alpha={hi} is {ratio_hi:.1f} >= speed ratio; "
            "raise the upper bracket")
    ratio_lo = limit_cost_ratio(lo, **limit_kwargs)
    if ratio_lo <= speed_ratio:
        return lo  # SEI already wins at the bottom of the bracket
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if limit_cost_ratio(mid, **limit_kwargs) > speed_ratio:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
