"""Algorithm 2: fast computation of the discrete model (50).

The exact summation (50) is linear in ``t_n``, which is hopeless for the
``t_n = 1e14``-scale evaluations the limits require (Table 5 extrapolates
four months of runtime). Algorithm 2 compresses all summands inside each
geometric interval ``[i, (1 + eps) i]`` into a single term, cutting the
runtime to ``O((1 + log(eps * t_n)) / eps)`` while keeping the result
within a vanishing multiplicative error: the block aggregates the exact
probability mass ``F_n(i + jump - 1) - F_n(i - 1)`` and evaluates
``w``, ``g``, ``h`` at the block start.

``eps = 1 / t_n`` degenerates to the exact model; the paper (and our
default) uses ``eps = 1e-5`` which matched the exact sum to two decimal
places at every ``n`` in Table 5.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.core.kernels import get_map
from repro.core.methods import get_method
from repro.core.weights import identity_weight
from repro.distributions.base import DegreeDistribution


@lru_cache(maxsize=32)
def _block_starts(t: int, eps: float) -> np.ndarray:
    """Block start indices ``i`` with jumps ``ceil(eps * i)``.

    Deterministic given ``(t, eps)``, so cached: the per-block recurrence
    is the only sequential part of Algorithm 2, everything downstream is
    vectorized.
    """
    starts = []
    i = 1
    while i <= t:
        starts.append(i)
        i += max(int(math.ceil(eps * i)), 1)
    return np.asarray(starts, dtype=np.float64)


def _block_quantities(dist: DegreeDistribution, weight, eps: float):
    """The per-block arrays every Algorithm-2 evaluation shares.

    Returns ``(starts, p, j, g)``: block starts, exact probability mass
    per block, running spread ``J`` at the block starts, and
    ``g(i) = i^2 - i``. Everything downstream of these depends only on
    the method's ``h`` and the limiting map, which is what lets
    :func:`fast_cost_model_many` price a whole candidate table in one
    pass over the distribution.
    """
    if not math.isfinite(dist.support_max):
        raise ValueError(
            "fast model needs a truncated distribution; call "
            "dist.truncate(t_n) first")
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    t = int(dist.support_max)
    starts = _block_starts(t, eps)
    jumps = np.maximum(np.ceil(eps * starts), 1.0)
    block_ends = np.minimum(starts + jumps - 1.0, float(t))
    # exact probability mass per block: F_n(end) - F_n(start - 1),
    # computed through the survival function -- the CDF saturates at 1
    # in float64 once the tail drops below ~1e-16 (t_n beyond ~1e11 for
    # heavy Pareto), whereas sf differences keep full relative precision
    p = np.maximum(dist.sf(starts - 1.0) - dist.sf(block_ends), 0.0)

    w_vals = weight(starts)
    e_dn = float(np.sum(w_vals * p))  # pass 1 of Algorithm 2: E[w(D_n)]
    if e_dn <= 0.0:
        raise ValueError("degenerate distribution: zero weighted mass")
    j = np.cumsum(w_vals * p) / e_dn  # running spread J (inclusive)
    j = np.minimum(j, 1.0)
    g = starts * starts - starts
    return starts, p, j, g


def fast_cost_model(dist: DegreeDistribution, method,
                    limit_map="descending", weight=identity_weight,
                    eps: float = 1e-5) -> float:
    """Algorithm 2 applied to the truncated law ``dist``.

    Same arguments as
    :func:`~repro.core.model.discrete_cost_model` plus the compression
    parameter ``eps`` in ``[1/t_n, 1)``. Returns the modeled per-node
    cost; with ``eps <= 1/t_n`` the result is bit-identical to the exact
    model.
    """
    method = get_method(method) if isinstance(method, str) else method
    limit_map = get_map(limit_map)
    __, p, j, g = _block_quantities(dist, weight, eps)
    h_vals = limit_map.expected_h(method.h, j)
    return float(np.sum(g * h_vals * p))


def fast_cost_model_many(dist: DegreeDistribution, pairs,
                         weight=identity_weight,
                         eps: float = 1e-5) -> list[float]:
    """Algorithm 2 over many ``(method, limit_map)`` pairs at once.

    The block decomposition, the probability masses, and the spread
    recurrence (passes 1-2 of Algorithm 2) depend only on the
    distribution, so a batch evaluation shares them across all pairs;
    only the final ``E[h(xi(J))]`` reduction runs per pair -- and pairs
    with the same ``(h, map)`` signature are computed once. This is the
    planner's hot path: a full 18-method x 5-ordering candidate table
    collapses to <= 30 distinct reductions over one shared pass.

    Returns the modeled costs aligned with ``pairs``. Each result is
    bit-identical to the corresponding :func:`fast_cost_model` call.
    """
    resolved = [(get_method(m) if isinstance(m, str) else m, get_map(lm))
                for m, lm in pairs]
    __, p, j, g = _block_quantities(dist, weight, eps)
    cache: dict[tuple[int, int], float] = {}
    out = []
    for method, limit_map in resolved:
        sig = (id(method.h), id(limit_map))
        value = cache.get(sig)
        if value is None:
            value = float(np.sum(g * limit_map.expected_h(method.h, j)
                                 * p))
            cache[sig] = value
        out.append(value)
    return out
