"""Finiteness thresholds and scaling rates (sections 4.2, 5.3, 6.3).

For Pareto ``F`` with tail index ``alpha``, the limit
``E[g(D) h(xi(J(D)))]`` is finite iff the integrand's tail decays fast
enough. Since ``1 - J(x) ~ x^(1 - alpha)`` and ``g(x) ~ x^2``, a method
whose ``E[h(xi(u))]`` vanishes like ``(1 - u)^k`` as ``u -> 1`` has a
finite limit iff

    ``alpha > (k + 2) / (k + 1)``.

The exponents the paper derives: ``k = 2`` for T1 + descending
(threshold 4/3), ``k = 1`` for T2 (any of asc/desc/RR) and E1 +
descending (threshold 3/2), and ``k = 0`` for everything that leaves
``h`` bounded away from zero at ``u = 1`` -- ascending T1/E1, RR E1, CRR
anything, uniform anything (threshold 2). :func:`h_tail_exponent`
measures ``k`` numerically from the map itself, so the rule extends to
maps beyond the named five.

When the limit is infinite, eqs. (47)-(48) give the exact growth rates
under root truncation, implemented by :func:`t1_scaling_rate` and
:func:`e1_scaling_rate`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.kernels import get_map
from repro.core.methods import get_method


def h_tail_exponent(method, limit_map, probes=(1e-4, 1e-6)) -> int:
    """The decay order ``k`` of ``E[h(xi(u))]`` as ``u -> 1``.

    Estimated from the log-log slope between two probe points near 1
    and rounded to the nearest integer in ``{0, 1, 2}`` (the only
    orders that arise for the quadratic ``h`` family of Table 4).
    """
    method = get_method(method) if isinstance(method, str) else method
    limit_map = get_map(limit_map)
    eps1, eps2 = probes
    v1 = float(limit_map.expected_h(method.h, np.float64(1.0 - eps1)))
    v2 = float(limit_map.expected_h(method.h, np.float64(1.0 - eps2)))
    if v2 > 1e-14 and v1 > 1e-14:
        slope = (math.log(v1) - math.log(v2)) / (
            math.log(eps1) - math.log(eps2))
    else:
        slope = 2.0  # vanished below double precision: quadratic decay
    k = int(round(slope))
    return max(min(k, 2), 0)


def finiteness_threshold(method, limit_map) -> float:
    """Smallest Pareto ``alpha`` (exclusive) with a finite cost limit.

    ``alpha > (k + 2) / (k + 1)`` with ``k`` from
    :func:`h_tail_exponent`; reproduces all the thresholds stated in the
    paper: 4/3 for T1 + descending, 3/2 for T2 (asc/desc/RR) and E1 +
    descending, 2 for ascending T1/E1, RR E1, CRR, and uniform.
    """
    k = h_tail_exponent(method, limit_map)
    return (k + 2.0) / (k + 1.0)


def is_cost_finite(alpha: float, method, limit_map) -> bool:
    """Does Pareto(``alpha``) give the pair a finite asymptotic cost?"""
    return alpha > finiteness_threshold(method, limit_map)


def spread_tail(alpha: float, x, t_n: float | None = None):
    """Eq. (46): the tail ``1 - J_n(x)`` of the (truncated) spread.

    For ``alpha > 1`` the untruncated tail is ``x^(1 - alpha)``; the
    other two regimes require the truncation point ``t_n`` because
    ``E[D_n] -> inf``.
    """
    x = np.asarray(x, dtype=float)
    if alpha > 1.0:
        return np.power(x, 1.0 - alpha)
    if t_n is None:
        raise ValueError(
            "alpha <= 1 requires the truncation point t_n (E[D_n] -> inf)")
    if alpha == 1.0:
        return 1.0 - np.log(x) / math.log(t_n)
    return 1.0 - np.power(x, 1.0 - alpha) / t_n ** (1.0 - alpha)


def t1_scaling_rate(alpha: float, n) -> np.ndarray:
    """Eq. (47): ``a_n`` with ``E[c_n(T1, theta_D)|D_n] / a_n -> 1``.

    Root truncation; valid for ``alpha <= 4/3`` where the limit is
    infinite.
    """
    n = np.asarray(n, dtype=float)
    if alpha > 4.0 / 3.0:
        raise ValueError(
            f"T1+descending has a finite limit for alpha={alpha} > 4/3; "
            "no scaling rate applies")
    if math.isclose(alpha, 4.0 / 3.0):
        return np.log(n)
    if 1.0 < alpha < 4.0 / 3.0:
        return np.power(n, 2.0 - 1.5 * alpha)
    if math.isclose(alpha, 1.0):
        return np.sqrt(n) / np.log(n) ** 2
    if 0.0 < alpha < 1.0:
        return np.power(n, 1.0 - alpha / 2.0)
    raise ValueError(f"alpha must be positive, got {alpha}")


def e1_scaling_rate(alpha: float, n) -> np.ndarray:
    """Eq. (48): ``b_n`` with ``E[c_n(E1, theta_D)|D_n] / b_n -> 1``.

    Root truncation; valid for ``alpha <= 1.5`` where the limit is
    infinite. Note ``b_n`` dominates ``a_n`` for all ``alpha`` in
    ``[1, 1.5)`` -- T1 grows strictly slower -- while for
    ``alpha < 1`` the two rates coincide.
    """
    n = np.asarray(n, dtype=float)
    if alpha > 1.5:
        raise ValueError(
            f"E1+descending has a finite limit for alpha={alpha} > 1.5; "
            "no scaling rate applies")
    if math.isclose(alpha, 1.5):
        return np.log(n)
    if 1.0 < alpha < 1.5:
        return np.power(n, 1.5 - alpha)
    if math.isclose(alpha, 1.0):
        return np.sqrt(n) / np.log(n)
    if 0.0 < alpha < 1.0:
        return np.power(n, 1.0 - alpha / 2.0)
    raise ValueError(f"alpha must be positive, got {alpha}")


def fit_growth_exponent(ns, costs) -> float:
    """Least-squares slope of ``log(cost)`` vs ``log(n)``.

    Utility for the scaling-rate benchmarks: compare the measured
    exponent against the (47)/(48) predictions.
    """
    ns = np.asarray(ns, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if ns.size != costs.size or ns.size < 2:
        raise ValueError("need at least two (n, cost) pairs")
    slope, __ = np.polyfit(np.log(ns), np.log(costs), 1)
    return float(slope)
