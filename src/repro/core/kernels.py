"""Limiting random maps ``xi(u)`` and measure-preserving kernels.

Section 5 models the limit of a permutation sequence ``{theta_n}`` as a
random process ``xi(u)`` on ``[0, 1]`` with distribution kernel
``K(v; u) = P(xi(u) <= v)``, required to be *measure-preserving*
(Definition 4): ``E[K(v; U)] = v`` for uniform ``U``.

The maps used by the paper:

=============  ==========================================================
permutation    limiting map
=============  ==========================================================
ascending      ``xi(u) = u`` (deterministic)
descending     ``xi(u) = 1 - u`` (deterministic)
uniform        ``xi(u) ~ U[0, 1]`` independent of ``u``
Round-Robin    ``(1-u)/2`` or ``(1+u)/2`` w.p. 1/2 each (Prop. 6)
CRR            ``u/2`` or ``1 - u/2`` w.p. 1/2 each (Prop. 7)
=============  ==========================================================

The model machinery only ever needs ``E[h(xi(u))]``, which every
:class:`LimitMap` provides in vectorized closed form. Proposition 7's
reversal/complement operations are provided as combinators, and
:func:`empirical_kernel` implements the windowed estimate (27) used to
*check* admissibility of a concrete permutation sequence.
"""

from __future__ import annotations

import abc

import numpy as np


class LimitMap(abc.ABC):
    """Limiting random map ``xi(u)`` of an admissible ``{theta_n}``."""

    #: Short identifier used in tables and registries.
    name: str = "abstract"

    @abc.abstractmethod
    def expected_h(self, h, u):
        """``E[h(xi(u))]`` for vectorized ``h`` and scalar/array ``u``."""

    @abc.abstractmethod
    def sample(self, u, rng: np.random.Generator):
        """One draw of ``xi(u)`` per entry of ``u``."""

    @abc.abstractmethod
    def kernel(self, v, u):
        """``K(v; u) = P(xi(u) <= v)``, vectorized in ``v``."""

    def check_measure_preserving(self, grid: int = 2001) -> float:
        """Max deviation of ``E[K(v; U)]`` from ``v`` on a uniform grid.

        Definition 4 requires this to vanish; the numeric check uses the
        midpoint rule over ``grid`` points and returns the worst error.
        """
        us = (np.arange(grid) + 0.5) / grid
        vs = np.linspace(0.0, 1.0, 101)
        worst = 0.0
        for v in vs:
            mean_kernel = float(np.mean(self.kernel(v, us)))
            worst = max(worst, abs(mean_kernel - float(v)))
        return worst

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _DeterministicMap(LimitMap):
    """``xi(u) = f(u)`` with probability one."""

    def __init__(self, f, name: str):
        self._f = f
        self.name = name

    def expected_h(self, h, u):
        return h(self._f(np.asarray(u, dtype=float)))

    def sample(self, u, rng):
        return self._f(np.asarray(u, dtype=float))

    def kernel(self, v, u):
        u = np.asarray(u, dtype=float)
        return (self._f(u) <= v).astype(float)


class AscendingMap(_DeterministicMap):
    """``xi_A(u) = u``: the identity (ascending-degree) limit."""

    def __init__(self):
        super().__init__(lambda u: u, "ascending")


class DescendingMap(_DeterministicMap):
    """``xi_D(u) = 1 - u``: the descending-degree limit."""

    def __init__(self):
        super().__init__(lambda u: 1.0 - u, "descending")


class UniformMap(LimitMap):
    """``xi_U(u) ~ Uniform[0, 1]`` independent of ``u`` (section 5.3).

    ``E[h(xi(u))] = int_0^1 h`` -- a constant; evaluated by Gauss-
    Legendre quadrature (512 nodes), exact for polynomial ``h`` like all
    of Table 4.
    """

    name = "uniform"
    _nodes, _weights = np.polynomial.legendre.leggauss(512)
    _nodes = (_nodes + 1.0) / 2.0  # shift to [0, 1]
    _weights = _weights / 2.0

    def expected_h(self, h, u):
        value = float(np.sum(self._weights * h(self._nodes)))
        u = np.asarray(u, dtype=float)
        return np.full(u.shape, value) if u.ndim else value

    def sample(self, u, rng):
        u = np.asarray(u, dtype=float)
        return rng.random(u.shape) if u.ndim else float(rng.random())

    def kernel(self, v, u):
        u = np.asarray(u, dtype=float)
        val = float(np.clip(v, 0.0, 1.0))
        return np.full(u.shape, val) if u.ndim else val


class _TwoPointMap(LimitMap):
    """``xi(u) in {a(u), b(u)}`` with probability 1/2 each."""

    def __init__(self, a, b, name: str):
        self._a = a
        self._b = b
        self.name = name

    def expected_h(self, h, u):
        u = np.asarray(u, dtype=float)
        return (h(self._a(u)) + h(self._b(u))) / 2.0

    def sample(self, u, rng):
        u = np.asarray(u, dtype=float)
        coin = rng.random(u.shape if u.ndim else None) < 0.5
        return np.where(coin, self._a(u), self._b(u))

    def kernel(self, v, u):
        u = np.asarray(u, dtype=float)
        return ((self._a(u) <= v).astype(float)
                + (self._b(u) <= v).astype(float)) / 2.0


class RoundRobinMap(_TwoPointMap):
    """Prop. 6: ``xi_RR(u) = (1-u)/2`` or ``(1+u)/2``, w.p. 1/2 each."""

    def __init__(self):
        super().__init__(lambda u: (1.0 - u) / 2.0,
                         lambda u: (1.0 + u) / 2.0, "rr")


class ComplementaryRoundRobinMap(_TwoPointMap):
    """``xi_CRR(u) = xi_RR(1-u)``: ``u/2`` or ``1 - u/2``, w.p. 1/2."""

    def __init__(self):
        super().__init__(lambda u: u / 2.0,
                         lambda u: 1.0 - u / 2.0, "crr")


class _ReversedMap(LimitMap):
    """Prop. 7: the reverse permutation's map is ``1 - xi(u)``."""

    def __init__(self, base: LimitMap):
        self.base = base
        self.name = f"reverse({base.name})"

    def expected_h(self, h, u):
        return self.base.expected_h(lambda x: h(1.0 - np.asarray(x)), u)

    def sample(self, u, rng):
        return 1.0 - self.base.sample(u, rng)

    def kernel(self, v, u):
        # P(1 - xi <= v) = P(xi >= 1 - v) = 1 - K((1-v)^-; u); our maps
        # are continuous or have finitely many atoms, handled exactly by
        # complementing the strict inequality with the atom at 1 - v.
        u = np.asarray(u, dtype=float)
        eps = 1e-12
        return 1.0 - self.base.kernel(1.0 - v - eps, u)


class _ComplementedMap(LimitMap):
    """Prop. 7: the complement permutation's map is ``xi(1 - u)``."""

    def __init__(self, base: LimitMap):
        self.base = base
        self.name = f"complement({base.name})"

    def expected_h(self, h, u):
        return self.base.expected_h(h, 1.0 - np.asarray(u, dtype=float))

    def sample(self, u, rng):
        return self.base.sample(1.0 - np.asarray(u, dtype=float), rng)

    def kernel(self, v, u):
        return self.base.kernel(v, 1.0 - np.asarray(u, dtype=float))


def reverse_map(base: LimitMap) -> LimitMap:
    """``xi'(u) = 1 - xi(u)`` (Proposition 7)."""
    return _ReversedMap(base)


def complement_map(base: LimitMap) -> LimitMap:
    """``xi''(u) = xi(1 - u)`` (Proposition 7)."""
    return _ComplementedMap(base)


#: Registry of the five paper maps by short name.
MAPS: dict[str, LimitMap] = {
    "ascending": AscendingMap(),
    "descending": DescendingMap(),
    "uniform": UniformMap(),
    "rr": RoundRobinMap(),
    "crr": ComplementaryRoundRobinMap(),
}


def get_map(map_or_name) -> LimitMap:
    """Resolve a :class:`LimitMap` instance or registry name."""
    if isinstance(map_or_name, LimitMap):
        return map_or_name
    m = MAPS.get(str(map_or_name).lower())
    if m is None:
        raise ValueError(
            f"unknown map {map_or_name!r}; choose from {sorted(MAPS)}")
    return m


def empirical_kernel(theta, u: float, v: float,
                     window: int | None = None) -> float:
    """The windowed kernel estimate ``K_n(v; u)`` of Definition 5 (27).

    For a concrete rank-to-label permutation ``theta`` (0-based array),
    returns the fraction of ranks within ``window`` of ``ceil(u n)``
    whose labels fall in ``[0, v n)``. With ``window = None`` the paper's
    ``k(n) = sqrt(n)``-style choice is used (``k(n) -> inf``,
    ``k(n)/n -> 0``). Admissibility means this converges in ``n`` for
    all ``(u, v)``.
    """
    theta = np.asarray(theta, dtype=np.int64)
    n = theta.size
    if n == 0:
        raise ValueError("empty permutation")
    if window is None:
        window = max(int(round(n**0.5)), 1)
    center = min(max(int(np.ceil(u * n)) - 1, 0), n - 1)
    lo = max(center - window, 0)
    hi = min(center + window, n - 1)
    block = theta[lo:hi + 1]
    return float(np.mean(block < v * n))
