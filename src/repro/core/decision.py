"""The SEI-vs-hash decision rule of section 2.4.

Scanning edge iterators execute up to 95x faster per operation on SIMD
hardware (Table 3) but perform more operations (Table 1). Defining
``w_n`` as the ratio of the *lowest* SEI cost to the lowest cost among
the hash-based families (vertex iterators and LEI), the paper's rule is

    SEI has the better runtime  iff  ``w_n < speed_ratio``

with ``speed_ratio ~ 95`` on the authors' Intel CPUs. Both quantities
depend on the concrete graph (or at least its degree distribution); the
single exception is ``n -> inf`` with ``w_n -> inf`` -- Pareto
``alpha in (4/3, 1.5]`` -- where SEI always loses because its best cost
diverges while T1's stays finite (section 6.3).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.core.costs import per_node_cost
from repro.core.limits import limit_cost
from repro.distributions.base import DegreeDistribution

#: Table 3's measured speed ratio on the authors' hardware.
PAPER_SPEED_RATIO = 1801.0 / 19.0

#: Environment knob overriding the default speed ratio per host.
SPEED_RATIO_ENV = "REPRO_SPEED_RATIO"


def resolve_speed_ratio(speed_ratio: float | str | None = None) -> float:
    """Resolve a ``speed_ratio`` argument to a positive float.

    The paper's 94.8x is a property of the *authors'* hardware; on a
    different host (or a pure-Python runtime with no SIMD scanning
    advantage at all) the ratio differs, which shifts the section 2.4
    decision boundary. Resolution order:

    * a number -- used as-is;
    * ``"paper"`` -- :data:`PAPER_SPEED_RATIO`;
    * ``"calibrated"`` -- this host's ratio via
      :func:`repro.engine.benchmark.calibrated_speed_ratio`: the
      rolling calibration store's fresh host-matching history when it
      has one, else measured once per process (and persisted back when
      ``REPRO_CALIBRATION_WRITE`` is set);
    * ``None`` (the default everywhere) -- the ``REPRO_SPEED_RATIO``
      environment variable when set, else :data:`PAPER_SPEED_RATIO`.
    """
    if speed_ratio is None:
        raw = os.environ.get(SPEED_RATIO_ENV, "").strip()
        if not raw:
            return PAPER_SPEED_RATIO
        speed_ratio = raw
    if isinstance(speed_ratio, str):
        name = speed_ratio.strip().lower()
        if name == "paper":
            return PAPER_SPEED_RATIO
        if name in ("calibrated", "auto"):
            from repro.engine.benchmark import calibrated_speed_ratio
            return calibrated_speed_ratio()
        try:
            speed_ratio = float(name)
        except ValueError:
            raise ValueError(
                f"speed_ratio must be a positive number, 'paper', or "
                f"'calibrated'; got {speed_ratio!r}") from None
    value = float(speed_ratio)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(
            f"speed_ratio must be positive and finite, got {value}")
    return value


@dataclass(frozen=True)
class MethodDecision:
    """Outcome of the section 2.4 decision rule."""

    best_hash_method: str
    best_hash_cost: float
    best_sei_method: str
    best_sei_cost: float
    cost_ratio: float           # w_n = best SEI / best hash
    speed_ratio: float
    winner: str                 # "SEI" or "hash"

    @property
    def sei_wins(self) -> bool:
        return self.winner == "SEI"


def cost_ratio_w(oriented) -> float:
    """``w_n``: best SEI cost over best hash-family cost on a graph.

    The best hash-based option under an optimal-per-method orientation
    would compare costs across orientations; here, as in the paper's
    per-graph discussion, the ratio is taken on the *given* oriented
    graph: hash best = min over T1/T2/T3 (LEI matches these), SEI best
    = min over E1/E4 (the two non-isomorphic SEI classes).
    """
    hash_best = min(per_node_cost(m, oriented.out_degrees,
                                  oriented.in_degrees)
                    for m in ("T1", "T2", "T3"))
    sei_best = min(per_node_cost(m, oriented.out_degrees,
                                 oriented.in_degrees)
                   for m in ("E1", "E4"))
    if hash_best == 0.0:
        return math.inf if sei_best > 0 else 1.0
    return sei_best / hash_best


def decide_on_graph(oriented,
                    speed_ratio: float | str | None = None
                    ) -> MethodDecision:
    """Apply the decision rule to a concrete oriented graph.

    ``speed_ratio`` accepts anything :func:`resolve_speed_ratio` does;
    by default the paper's 94.8 (or the ``REPRO_SPEED_RATIO``
    override), while ``"calibrated"`` measures this host once.
    """
    speed_ratio = resolve_speed_ratio(speed_ratio)
    hash_costs = {m: per_node_cost(m, oriented.out_degrees,
                                   oriented.in_degrees)
                  for m in ("T1", "T2", "T3")}
    sei_costs = {m: per_node_cost(m, oriented.out_degrees,
                                  oriented.in_degrees)
                 for m in ("E1", "E4")}
    best_hash = min(hash_costs, key=hash_costs.get)
    best_sei = min(sei_costs, key=sei_costs.get)
    hash_cost = hash_costs[best_hash]
    sei_cost = sei_costs[best_sei]
    ratio = sei_cost / hash_cost if hash_cost else math.inf
    winner = "SEI" if ratio < speed_ratio else "hash"
    return MethodDecision(best_hash, hash_cost, best_sei, sei_cost,
                          ratio, speed_ratio, winner)


def decide_in_limit(base_dist: DegreeDistribution,
                    speed_ratio: float | str | None = None,
                    **limit_kwargs) -> MethodDecision:
    """Apply the rule at ``n -> inf`` under optimal orientations.

    Best hash option: T1 under descending (eq. 44). Best SEI option:
    E1 under descending (eq. 45). When E1's limit is infinite and T1's
    finite -- Pareto ``alpha in (4/3, 1.5]`` -- the ratio is infinite
    and T1 wins "no matter how these algorithms are implemented".
    """
    speed_ratio = resolve_speed_ratio(speed_ratio)
    limit_kwargs.setdefault("eps", 1e-4)
    t1 = limit_cost(base_dist, "T1", "descending", **limit_kwargs)
    e1 = limit_cost(base_dist, "E1", "descending", **limit_kwargs)
    if math.isinf(e1) and math.isfinite(t1):
        ratio = math.inf
    elif math.isinf(t1) and math.isinf(e1):
        ratio = float("nan")  # both diverge: compare growth rates instead
    else:
        ratio = e1 / t1
    winner = "SEI" if ratio < speed_ratio else "hash"
    return MethodDecision("T1", t1, "E1", e1, ratio, speed_ratio, winner)
