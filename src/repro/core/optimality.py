"""Optimal permutations and method comparison (section 6).

Lemma 4 rewrites the limit as ``c(M, xi) = E[w(D)] E[r(U) h(xi(U))]``
with ``r(x) = g(J^{-1}(x)) / w(J^{-1}(x))`` and uniform ``U``. For
monotonic ``r``, Algorithm 1 sorts the key vector ``(h(1/n), ..., h(1))``
against ``r``'s monotonicity and reads off the optimal permutation
(Theorem 3). For triangle listing with ``w(x) = min(x, a)``, the ratio
``g(x)/w(x)`` is increasing, which pins down (Corollaries 1-2):

* descending optimal for T1 / E1 / E2 (and Chiba-Nishizeki);
* ascending optimal for T3 / E3 / E5;
* Round-Robin optimal for T2 (and T5);
* Complementary Round-Robin optimal for E4 / E6.

Corollary 3: a map is optimal iff its complement is the worst, giving
:func:`worst_map` for free. :func:`cost_functional` evaluates the
rewritten objective ``E[r(U) h(xi(U))]`` numerically, which is how the
tests verify Theorems 3-5 without any graph in sight.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import (
    AscendingMap,
    ComplementaryRoundRobinMap,
    DescendingMap,
    LimitMap,
    RoundRobinMap,
    complement_map,
    get_map,
)
from repro.core.methods import get_method

#: Corollary 1-2 assignments under increasing r(x) (the triangle case).
_OPTIMAL_WHEN_R_INCREASING = {
    "T1": DescendingMap(),
    "T4": DescendingMap(),
    "T2": RoundRobinMap(),
    "T5": RoundRobinMap(),
    "T3": AscendingMap(),
    "T6": AscendingMap(),
    "E1": DescendingMap(),
    "E2": DescendingMap(),
    "E3": AscendingMap(),
    "E5": AscendingMap(),
    "E4": ComplementaryRoundRobinMap(),
    "E6": ComplementaryRoundRobinMap(),
    "L1": RoundRobinMap(),
    "L3": RoundRobinMap(),
    "L2": DescendingMap(),
    "L6": DescendingMap(),
    "L4": AscendingMap(),
    "L5": AscendingMap(),
}


def optimal_map(method, r_increasing: bool = True) -> LimitMap:
    """The cost-minimizing limiting map for ``method``.

    With ``r_increasing=False`` the optimum flips to the complement
    (Theorem 3 sorts the other way); ``r`` constant makes every map
    equally good (Proposition 8), in which case this still returns the
    increasing-r choice as a representative.
    """
    name = (method if isinstance(method, str) else method.name).upper()
    best = _OPTIMAL_WHEN_R_INCREASING.get(name)
    if best is None:
        raise ValueError(f"unknown method {name!r}")
    if r_increasing:
        return best
    return complement_map(best)


def worst_map(method, r_increasing: bool = True) -> LimitMap:
    """Corollary 3: the complement of the optimal map is the worst."""
    return complement_map(optimal_map(method, r_increasing))


def opt_permutation_ranks(method, n: int,
                          r_increasing: bool = True) -> np.ndarray:
    """Algorithm 1's rank-to-label array for a concrete ``n``.

    Thin wrapper over
    :class:`~repro.orientations.permutations.OptPermutation` using the
    method's ``h``; exposed here so model-level code can build the OPT
    order without importing the orientation layer.
    """
    from repro.orientations.permutations import OptPermutation
    method = get_method(method) if isinstance(method, str) else method
    return OptPermutation(method.h, r_increasing).rank_to_label(n)


def cost_functional(r, h, limit_map, grid: int = 20001) -> float:
    """``E[r(U) h(xi(U))]`` by midpoint quadrature (Lemma 4's form).

    ``r`` and ``h`` must be vectorized callables on ``[0, 1]``. Used to
    verify Theorem 3 (OPT beats every named map), Theorem 4
    (``c(T1, xi_D) < c(T2, xi_RR)`` for increasing ``r``) and Theorem 5
    (``c(E1, xi_D) < c(E4, xi_CRR)``) without constructing any graph.
    """
    limit_map = get_map(limit_map)
    us = (np.arange(grid) + 0.5) / grid
    return float(np.mean(np.asarray(r(us), dtype=float)
                         * np.asarray(limit_map.expected_h(h, us),
                                      dtype=float)))


def discrete_functional(r_values, h, theta) -> float:
    """The finite-``n`` objective ``(1/n) sum r(i/n) h(theta_pos/n)``.

    ``theta`` maps rank ``j`` (0-based) to label; position ``(label+1)/n``
    enters ``h``. This is the quantity Algorithm 1 minimizes, used in
    tests to confirm OPT beats random permutations on every monotone
    ``r`` sample.
    """
    r_values = np.asarray(r_values, dtype=float)
    theta = np.asarray(theta, dtype=np.int64)
    n = theta.size
    if r_values.shape != (n,):
        raise ValueError("r_values must have one entry per rank")
    positions = (theta + 1.0) / n
    return float(np.mean(r_values * np.asarray(h(positions), dtype=float)))
