"""Ablation: how the random-graph generator biases measured cost.

Section 7.2's motivation made quantitative. Three generators realize
the same degree sequences:

* **configuration** -- stub matching + simplification; loses degree to
  removed self-loops/duplicates, deflating measured cost;
* **residual** -- the paper's sampler; realizes ``D_n`` exactly;
* **Havel-Hakimi + mixing** -- exact degrees via a deterministic
  construction randomized by double-edge swaps.

Under linear truncation at alpha = 1.5 (where the deficit bites), the
configuration model's measured T1+descending cost falls visibly below
the other two, which agree with each other -- evidence that the paper's
generator choice is what makes simulations comparable to
``E[X_i | D_n]``.
"""

import numpy as np
import pytest

from repro import (
    DescendingDegree,
    DiscretePareto,
    configuration_model,
    residual_degree_model,
    sample_degree_sequence,
)
from repro.core.costs import per_node_cost
from repro.distributions import linear_truncation
from repro.graphs.generators import havel_hakimi_graph
from repro.orientations.relabel import orient

from _common import FULL, emit

N = 10_000 if FULL else 3000
REPS = 12 if FULL else 6


def _measure(builder, degrees, rng):
    graph = builder(degrees, rng)
    oriented = orient(graph, DescendingDegree())
    deficit = 1.0 - graph.degrees.sum() / degrees.sum()
    return per_node_cost("T1", oriented.out_degrees,
                         oriented.in_degrees), deficit


def test_generator_ablation(benchmark):
    def run():
        rng = np.random.default_rng(72)
        dist = DiscretePareto(1.5, 15.0).truncate(linear_truncation(N))
        stats = {"configuration": [], "residual": [], "havel-hakimi": []}
        deficits = {k: [] for k in stats}
        for __ in range(REPS):
            degrees = sample_degree_sequence(dist, N, rng)
            for name, builder in [
                    ("configuration", configuration_model),
                    ("residual", residual_degree_model),
                    ("havel-hakimi", havel_hakimi_graph)]:
                cost, deficit = _measure(builder, degrees, rng)
                stats[name].append(cost)
                deficits[name].append(deficit)
        return ({k: float(np.mean(v)) for k, v in stats.items()},
                {k: float(np.mean(v)) for k, v in deficits.items()})

    costs, deficits = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Generator ablation: T1 + descending, alpha=1.5, linear "
             f"truncation, n={N}, {REPS} sequences",
             f"{'generator':>15} {'mean c_n':>10} {'degree deficit':>15}"]
    for name in ("configuration", "residual", "havel-hakimi"):
        lines.append(f"{name:>15} {costs[name]:>10.1f} "
                     f"{100 * deficits[name]:>14.2f}%")
    emit("generator_ablation", "\n".join(lines))

    # exact generators realize every degree
    assert deficits["residual"] == pytest.approx(0.0, abs=1e-12)
    assert deficits["havel-hakimi"] == pytest.approx(0.0, abs=1e-12)
    # stub matching loses degree mass and with it, measured cost
    assert deficits["configuration"] > 0.01
    assert costs["configuration"] < costs["residual"]
    # the two exact generators agree on the expected cost
    assert costs["havel-hakimi"] == pytest.approx(costs["residual"],
                                                  rel=0.15)
