"""Shared infrastructure for the table-reproduction benchmarks.

Every ``bench_table*.py`` regenerates one table of the paper's
evaluation: it computes the same rows the paper reports (at a Python-
tractable scale by default), prints them, and writes them to
``benchmarks/results/`` so the run leaves an artifact trail that
EXPERIMENTS.md references.

Each :func:`emit` call now leaves *three* artifacts: the rendered
``<name>.txt`` table, a ``<name>.json`` sidecar (git revision,
timestamp, scale flags), and one line appended to ``runs.jsonl`` -- a
full :mod:`repro.obs` run record carrying the span trees (per-phase
relabel/orient/list timings), the metrics snapshot, and the run config.

Scale control: set ``REPRO_BENCH_FULL=1`` to use larger ``n`` grids and
more Monte-Carlo instances (slower, closer to the paper's setup).
``REPRO_BENCH_EXPORT=1`` additionally drops ``<name>.trace.json``
(Chrome trace-event) and ``<name>.flame.txt`` (collapsed stacks)
viewer artifacts next to each table.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import time

from repro import obs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Larger grids when REPRO_BENCH_FULL=1 is exported.
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Graph sizes for the simulation tables (paper: 1e4 .. 1e7).
SIM_SIZES = [10**4, 3 * 10**4, 10**5] if FULL else [1000, 3000, 10_000]

#: Monte-Carlo budget per cell (paper: 100 sequences x 100 graphs).
N_SEQUENCES = 8 if FULL else 3
N_GRAPHS = 8 if FULL else 2


def bench_workers() -> int | None:
    """Worker-pool size for the simulation benches.

    ``REPRO_BENCH_WORKERS``: unset/``0`` keeps the historic serial
    path (golden values byte-identical); a positive integer fans
    cells over that many processes; ``auto`` resolves from
    ``REPRO_MAX_WORKERS`` / cpu count.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "").strip().lower()
    if not raw or raw == "0":
        return 0
    if raw == "auto":
        return None
    try:
        return int(raw)
    except ValueError:
        return 0


def emit(name: str, text: str, results_dir=None,
         config: dict | None = None,
         data: dict | None = None) -> pathlib.Path:
    """Print a reproduction table and persist it under results/.

    Writes ``<name>.txt``, a ``<name>.json`` sidecar, and appends a
    :class:`repro.obs.RunRecord` (collecting any finished spans and
    the current metrics snapshot) to ``runs.jsonl`` in the same
    directory. ``data`` is folded into the sidecar under ``"data"`` --
    machine-readable bench results (e.g. per-method ns/edge) that
    future runs can diff for regressions. Returns the path of the
    ``.txt`` artifact so benches can assert on it.
    """
    out_dir = pathlib.Path(results_dir) if results_dir else RESULTS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    print()
    print(text)
    path = out_dir / f"{name}.txt"
    path.write_text(text + "\n")
    sidecar = {
        "name": name,
        "artifact": path.name,
        "git_rev": obs.git_revision(),
        "created_unix": time.time(),
        "full_scale": FULL,
        "lines": text.count("\n") + 1,
        # Host metadata makes BENCH_*.json / runs.jsonl comparable
        # across machines (a 4-core CI runner vs. a 64-core box).
        "host": obs.records.host_meta(),
    }
    if data is not None:
        sidecar["data"] = data
    (out_dir / f"{name}.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
    # REPRO_RUNS_FILE redirects the run-record trail (e.g. the CI perf
    # gate isolating its history); otherwise it rides with the tables.
    if os.environ.get("REPRO_RUNS_FILE", "").strip():
        record_path = obs.records.runs_path()
    else:
        record_path = out_dir / "runs.jsonl"
    record = obs.collect(name, config=config)
    record.meta["host"] = sidecar["host"]
    obs.records.write_record(record, record_path)
    # REPRO_BENCH_EXPORT=1 drops viewer-ready artifacts next to the
    # table: Chrome trace-event JSON and collapsed flame stacks of the
    # spans this very run just recorded (CI uploads them).
    if os.environ.get("REPRO_BENCH_EXPORT", "").strip() == "1" \
            and record.spans:
        obs.write_trace([record], out_dir / f"{name}.trace.json")
        obs.write_collapsed([record], out_dir / f"{name}.flame.txt",
                            source="spans")
    return path


@contextlib.contextmanager
def traced_run(name: str, **attrs):
    """Enable the obs layer around a bench body under one root span.

    For benches that assemble their tables by hand (rather than via
    :func:`run_sim_table`): the next :func:`emit` call then finds the
    finished span tree and metric counters and folds them into the
    ``runs.jsonl`` record.
    """
    was_enabled = obs.is_enabled()
    obs.enable()
    obs.reset()
    try:
        with obs.span(name, **attrs):
            yield
    finally:
        if not was_enabled:
            obs.disable()


def run_sim_table(name: str, title: str, base_dist, truncation, cells,
                  sizes=None, seed: int = 2017):
    """Reproduce one of Tables 6-10 via the library generator.

    Thin wrapper over
    :func:`repro.experiments.paper_tables.simulation_table` that applies
    the benchmark-suite scale knobs, runs with the observability layer
    enabled (so the ``runs.jsonl`` record carries per-phase
    relabel/orient/list timings and the metric counters), and persists
    the artifacts. Returns the assembled rows for assertions.
    """
    from repro.experiments.paper_tables import simulation_table

    sizes = sizes if sizes is not None else SIM_SIZES
    workers = bench_workers()
    config = {
        "table": name,
        "title": title,
        "seed": seed,
        "sizes": list(sizes),
        "n_sequences": N_SEQUENCES,
        "n_graphs": N_GRAPHS,
        "workers": workers,
        "full_scale": FULL,
        "cells": [{"label": label, "method": method,
                   "permutation": type(perm).__name__,
                   "limit_map": str(limit_map)}
                  for label, method, perm, limit_map in cells],
    }
    was_enabled = obs.is_enabled()
    obs.enable()
    obs.reset()
    try:
        with obs.span("table", name=name, seed=seed):
            text, rows = simulation_table(
                title, base_dist, truncation, cells, sizes=sizes,
                n_sequences=N_SEQUENCES, n_graphs=N_GRAPHS, seed=seed,
                workers=workers)
    finally:
        if not was_enabled:
            obs.disable()
    config["rows"] = sim_rows_for_record(rows, cells)
    emit(name, text, config=config)
    return rows


def sim_rows_for_record(rows, cells) -> list[dict]:
    """Flatten :class:`ComparisonRow` cells for the run record.

    One dict per (label, n) with the ``sim`` / ``model`` / ``error``
    triple -- the shape ``repro report divergence`` and the baseline
    comparison consume. The ``n = "inf"`` limit row is skipped (it has
    no simulated side).
    """
    labels = [cell[0] for cell in cells]
    out = []
    for row in rows:
        if not isinstance(row.n, int):
            continue
        for label, cell in zip(labels, row.cells):
            if cell is None:
                continue
            sim, model, error = cell
            out.append({"label": label, "n": int(row.n), "sim": sim,
                        "model": model, "error": error})
    return out
