"""Shared infrastructure for the table-reproduction benchmarks.

Every ``bench_table*.py`` regenerates one table of the paper's
evaluation: it computes the same rows the paper reports (at a Python-
tractable scale by default), prints them, and writes them to
``benchmarks/results/`` so the run leaves an artifact trail that
EXPERIMENTS.md references.

Scale control: set ``REPRO_BENCH_FULL=1`` to use larger ``n`` grids and
more Monte-Carlo instances (slower, closer to the paper's setup).
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Larger grids when REPRO_BENCH_FULL=1 is exported.
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Graph sizes for the simulation tables (paper: 1e4 .. 1e7).
SIM_SIZES = [10**4, 3 * 10**4, 10**5] if FULL else [1000, 3000, 10_000]

#: Monte-Carlo budget per cell (paper: 100 sequences x 100 graphs).
N_SEQUENCES = 8 if FULL else 3
N_GRAPHS = 8 if FULL else 2


def emit(name: str, text: str) -> None:
    """Print a reproduction table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_sim_table(name: str, title: str, base_dist, truncation, cells,
                  sizes=None, seed: int = 2017):
    """Reproduce one of Tables 6-10 via the library generator.

    Thin wrapper over
    :func:`repro.experiments.paper_tables.simulation_table` that applies
    the benchmark-suite scale knobs and persists the artifact. Returns
    the assembled rows for assertions.
    """
    from repro.experiments.paper_tables import simulation_table

    text, rows = simulation_table(
        title, base_dist, truncation, cells,
        sizes=sizes if sizes is not None else SIM_SIZES,
        n_sequences=N_SEQUENCES, n_graphs=N_GRAPHS, seed=seed)
    emit(name, text)
    return rows
