"""Section 5.3 economics: uniform orientation = exactly a 3x saving.

Eq. (31): under the uniform map the limit factorizes into
``E[D^2 - D] E[h(U)]`` with ``E[h(U)] = 1/6`` (vertex iterators) and
``1/3`` (edge iterators), versus the un-oriented baselines
``E[D^2 - D]/2`` and ``E[D^2 - D]`` -- a 3x reduction either way,
"since orientation avoids counting each triangle three times". We
reproduce the constants analytically and the 3x on a simulated graph.
"""

import numpy as np
import pytest

from repro import (
    DiscretePareto,
    UniformRandom,
    generate_graph,
    orient,
    sample_degree_sequence,
)
from repro.core.costs import per_node_cost
from repro.core.limits import (
    no_orientation_cost,
    uniform_orientation_cost,
)
from repro.distributions import root_truncation

from _common import FULL, emit

DIST = DiscretePareto(alpha=2.5, beta=45.0)
N = 30_000 if FULL else 8000


def test_uniform_orientation_reproduction(benchmark):
    def run():
        rng = np.random.default_rng(31)
        dist_n = DIST.truncate(root_truncation(N))
        degrees = sample_degree_sequence(dist_n, N, rng)
        graph = generate_graph(degrees, rng)
        reps = 6 if FULL else 3
        sims = {"T1": [], "E1": []}
        unoriented = float(np.mean(
            graph.degrees.astype(float) ** 2 - graph.degrees))
        for __ in range(reps):
            oriented = orient(graph, UniformRandom(), rng=rng,
                              tie_break="random")
            for m in sims:
                sims[m].append(per_node_cost(
                    m, oriented.out_degrees, oriented.in_degrees))
        return unoriented, {m: float(np.mean(v)) for m, v in sims.items()}

    unoriented, sims = benchmark.pedantic(run, rounds=1, iterations=1)
    limit_t1 = uniform_orientation_cost(DIST, "T1")
    limit_e1 = uniform_orientation_cost(DIST, "E1")
    base_v = no_orientation_cost(DIST, "vertex")
    base_e = no_orientation_cost(DIST, "edge")

    lines = [
        "Eq. (31): uniform orientation vs no orientation (alpha=2.5)",
        f"{'quantity':>38} {'value':>12}",
        f"{'E[D^2-D]/2 (vertex, no orient)':>38} {base_v:>12.1f}",
        f"{'c(T1, xi_U) = E[D^2-D]/6':>38} {limit_t1:>12.1f}",
        f"{'E[D^2-D] (edge, no orient)':>38} {base_e:>12.1f}",
        f"{'c(E1, xi_U) = E[D^2-D]/3':>38} {limit_e1:>12.1f}",
        f"{'simulated T1 under theta_U (n=%d)' % N:>38} "
        f"{sims['T1']:>12.1f}",
        f"{'simulated E1 under theta_U':>38} {sims['E1']:>12.1f}",
        f"{'simulated unoriented E[d^2-d]/2':>38} "
        f"{unoriented / 2:>12.1f}",
    ]
    emit("permutation_economics", "\n".join(lines))

    assert base_v / limit_t1 == pytest.approx(3.0)
    assert base_e / limit_e1 == pytest.approx(3.0)
    # the simulated graph obeys the same 3x within sampling noise
    assert (unoriented / 2) / sims["T1"] == pytest.approx(3.0, rel=0.1)
    assert unoriented / sims["E1"] == pytest.approx(3.0, rel=0.1)
