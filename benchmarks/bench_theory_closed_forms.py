"""Closed-form limits (eqs. 22-24, 34-36, 44-45) vs Algorithm 2.

Two completely independent evaluation paths of the same quantities --
adaptive quadrature against the continuous Pareto spread (19) on one
side, Algorithm 2 over the discrete law on the other -- agree across an
alpha grid to within the continuous-vs-discrete gap of Table 5. This
is the strongest internal-consistency check in the suite: a bug in
either the spread, the h functions, the maps, or the blockwise model
would break the match.
"""

import math

import pytest

from repro import DiscretePareto, limit_cost
from repro.core.theory import NAMED_LIMITS, named_limit
from repro.distributions import ContinuousPareto

from _common import emit

ALPHAS = (1.4, 1.7, 2.1, 2.5)


def _grid():
    rows = []
    for alpha in ALPHAS:
        beta = 30.0 * (alpha - 1.0)
        cont = ContinuousPareto(alpha, beta)
        disc = DiscretePareto(alpha, beta)
        for method, map_name in sorted(NAMED_LIMITS):
            closed = named_limit(method, map_name, cont)
            numeric = limit_cost(disc, method, map_name, eps=1e-4,
                                 t_max=1e14)
            rows.append((alpha, method, map_name, closed, numeric))
    return rows


def test_closed_forms_reproduction(benchmark):
    rows = benchmark.pedantic(_grid, rounds=1, iterations=1)
    lines = ["Closed-form limits vs Algorithm 2 (beta = 30 (alpha-1))",
             f"{'alpha':>6} {'method':>7} {'map':>11} "
             f"{'closed form':>12} {'Algorithm 2':>12}"]
    for alpha, method, map_name, closed, numeric in rows:
        c = "inf" if math.isinf(closed) else f"{closed:.2f}"
        d = "inf" if math.isinf(numeric) else f"{numeric:.2f}"
        lines.append(f"{alpha:>6.2f} {method:>7} {map_name:>11} "
                     f"{c:>12} {d:>12}")
    emit("theory_closed_forms", "\n".join(lines))

    for alpha, method, map_name, closed, numeric in rows:
        if math.isinf(closed) or math.isinf(numeric):
            assert math.isinf(closed) == math.isinf(numeric), \
                (alpha, method, map_name)
        else:
            # the continuous model runs slightly high vs the discrete
            # law (Table 5's 1.5-2%), and the near-threshold cases add
            # extrapolation error on the discrete side; allow 4%
            assert closed == pytest.approx(numeric, rel=0.04), \
                (alpha, method, map_name)
