"""Table 6: T1 under both monotone permutations, alpha=1.5, root trunc.

Paper's claims at this setting (AMRC by construction): the model (50) is
accurate already at n = 10^4 (errors ~2%), descending costs an order of
magnitude less than ascending, the descending limit is 356.3 while the
ascending limit is infinite (threshold alpha > 2).
"""

import math

import pytest

from repro import AscendingDegree, DescendingDegree, DiscretePareto
from repro.distributions import root_truncation

from _common import FULL, emit, run_sim_table

DIST = DiscretePareto(alpha=1.5, beta=15.0)

CELLS = [
    ("T1+A", "T1", AscendingDegree(), "ascending"),
    ("T1+D", "T1", DescendingDegree(), "descending"),
]


def test_table06_reproduction(benchmark):
    rows = benchmark.pedantic(
        lambda: run_sim_table(
            "table06",
            "Table 6: cost with alpha=1.5 and root truncation",
            DIST, root_truncation, CELLS),
        rounds=1, iterations=1)
    finite_rows = rows[:-1]
    for row in finite_rows:
        for sim, model, error in row.cells:
            assert abs(error) < 0.12, (row.n, sim, model)
        asc, desc = row.cells
        assert desc[0] < asc[0]  # descending wins at every n
    limit_row = rows[-1]
    assert math.isinf(limit_row.cells[0][1])  # T1+A diverges
    assert limit_row.cells[1][1] == pytest.approx(356.3, abs=0.5)
