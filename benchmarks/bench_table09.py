"""Table 9: the Table 6 setup under linear truncation (unconstrained).

alpha = 1.5 with t_n = n - 1 violates AMRC, so the model (50) is only
asymptotically right: the paper sees T1+A errors of -10% shrinking as n
grows, and T1+D errors of ~+15% decaying slowly. Both costs exceed
their root-truncation counterparts at the same n.
"""

import math

import numpy as np
import pytest

from repro import AscendingDegree, DescendingDegree, DiscretePareto
from repro.distributions import linear_truncation, root_truncation
from repro.experiments.harness import SimulationSpec, simulate_cost

from _common import N_GRAPHS, N_SEQUENCES, SIM_SIZES, run_sim_table

DIST = DiscretePareto(alpha=1.5, beta=15.0)

CELLS = [
    ("T1+A", "T1", AscendingDegree(), "ascending"),
    ("T1+D", "T1", DescendingDegree(), "descending"),
]


def test_table09_reproduction(benchmark):
    rows = benchmark.pedantic(
        lambda: run_sim_table(
            "table09",
            "Table 9: cost with alpha=1.5 and linear truncation",
            DIST, linear_truncation, CELLS),
        rounds=1, iterations=1)
    for row in rows[:-1]:
        asc, desc = row.cells
        # unconstrained degrees: model errors are larger than Table 6's
        # but bounded; signs match the paper (ascending under-modeled is
        # not guaranteed at small n, so only magnitude is checked)
        assert abs(asc[2]) < 0.5
        assert abs(desc[2]) < 0.5
        assert desc[0] < asc[0]
    assert math.isinf(rows[-1].cells[0][1])
    assert rows[-1].cells[1][1] == pytest.approx(356.3, abs=0.5)


def test_linear_exceeds_root_truncation(benchmark):
    """Paper: 'both permutations now produce larger cost' vs Table 6."""
    def compare():
        rng = np.random.default_rng(99)
        out = {}
        for name, trunc in [("linear", linear_truncation),
                            ("root", root_truncation)]:
            spec = SimulationSpec(
                base_dist=DIST, truncation=trunc, method="T1",
                permutation=DescendingDegree(), limit_map="descending",
                n_sequences=N_SEQUENCES, n_graphs=N_GRAPHS)
            out[name] = simulate_cost(spec, SIM_SIZES[0], rng)
        return out
    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert out["linear"] > out["root"]
