"""Section 2.4 + 6.3: the SEI-vs-hash decision across tail indices.

Sweeps Pareto alpha and applies the paper's rule (SEI wins iff the
operation-count ratio ``w`` is below the hardware speed ratio, 94.8x on
the authors' testbed) both on finite graphs and in the limit. The
asserted headline: in the window alpha in (4/3, 1.5] the limit ratio is
infinite -- T1 wins "no matter how these algorithms are implemented" --
while outside it the single-digit cost ratio hands SEI the win on
SIMD-class hardware.
"""

import math

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, orient
from repro.core.decision import (
    PAPER_SPEED_RATIO,
    decide_in_limit,
    decide_on_graph,
)
from repro.distributions import root_truncation
from repro.distributions.sampling import sample_degree_sequence
from repro.graphs.generators import generate_graph

from _common import FULL, emit

ALPHAS = (1.40, 1.45, 1.60, 1.80, 2.20)
N = 30_000 if FULL else 8000


def test_decision_rule_reproduction(benchmark):
    def run():
        rng = np.random.default_rng(24)
        rows = []
        for alpha in ALPHAS:
            dist = DiscretePareto.paper_parameterization(alpha)
            limit = decide_in_limit(dist, t_max=1e14)
            degrees = sample_degree_sequence(
                dist.truncate(root_truncation(N)), N, rng)
            graph = generate_graph(degrees, rng)
            finite = decide_on_graph(orient(graph, DescendingDegree()))
            rows.append((alpha, finite, limit))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Decision rule: SEI vs hash (speed ratio "
             f"{PAPER_SPEED_RATIO:.1f}x, n={N} for finite graphs)",
             f"{'alpha':>6} {'w (graph)':>10} {'graph winner':>13} "
             f"{'w (limit)':>10} {'limit winner':>13}"]
    for alpha, finite, limit in rows:
        w_lim = ("inf" if math.isinf(limit.cost_ratio)
                 else f"{limit.cost_ratio:.2f}")
        lines.append(f"{alpha:>6.2f} {finite.cost_ratio:>10.2f} "
                     f"{finite.winner:>13} {w_lim:>10} "
                     f"{limit.winner:>13}")
    emit("decision_rule", "\n".join(lines))

    by_alpha = {alpha: (finite, limit) for alpha, finite, limit in rows}
    # inside the provable window the limit ratio is infinite: hash wins
    for alpha in (1.40, 1.45):
        assert math.isinf(by_alpha[alpha][1].cost_ratio)
        assert by_alpha[alpha][1].winner == "hash"
    # outside it the limit ratio is small: SEI wins on SIMD hardware
    # (the ratio inflates as alpha approaches 1.5 from above, where
    # E1's limit blows up while T1's stays put)
    for alpha in (1.60, 1.80, 2.20):
        assert by_alpha[alpha][1].cost_ratio < 20
        assert by_alpha[alpha][1].sei_wins
    # on every finite graph the measured ratio stays far below 94.8
    for alpha in ALPHAS:
        assert by_alpha[alpha][0].cost_ratio < 20
        assert by_alpha[alpha][0].sei_wins
