"""Table 10: T2 under descending vs RR, alpha=1.7, linear truncation.

The unconstrained sibling of Table 7: the paper sees model errors of
+71% (n=1e4) decaying to +22% (n=1e7) for T2+D, and +50% -> +19% for
T2+RR -- the model over-estimates but converges because the limit is
finite. RR still beats descending at every n.
"""

import pytest

from repro import DescendingDegree, DiscretePareto, RoundRobin
from repro.distributions import linear_truncation

from _common import run_sim_table

DIST = DiscretePareto(alpha=1.7, beta=21.0)

CELLS = [
    ("T2+D", "T2", DescendingDegree(), "descending"),
    ("T2+RR", "T2", RoundRobin(), "rr"),
]


def test_table10_reproduction(benchmark):
    rows = benchmark.pedantic(
        lambda: run_sim_table(
            "table10",
            "Table 10: cost with alpha=1.7 and linear truncation",
            DIST, linear_truncation, CELLS),
        rounds=1, iterations=1)
    for row in rows[:-1]:
        desc, rr = row.cells
        # unconstrained: the model runs high, like the paper's +20..70%
        assert desc[2] > 0.0, row.n
        assert rr[2] > 0.0, row.n
        assert rr[0] < desc[0]
    # the error monotonically decays toward zero as n grows
    errors = [row.cells[0][2] for row in rows[:-1]]
    assert errors[-1] < errors[0]
    assert rows[-1].cells[0][1] == pytest.approx(1307.6, rel=5e-3)
    assert rows[-1].cells[1][1] == pytest.approx(770.4, rel=5e-3)
