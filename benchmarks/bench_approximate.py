"""Wedge sampling vs exact counting: the accuracy/speed tradeoff.

An applications-side companion to the paper's exact-listing focus: when
only the triangle *count* matters, sampling beats listing by orders of
magnitude. The table sweeps the sample budget and reports relative
error and time against the sparse exact counter and the instrumented
E1 lister.
"""

import time

import numpy as np
import pytest

from repro import DescendingDegree, list_triangles, orient
from repro.experiments.twitter import twitter_like_graph
from repro.graphs.analysis import triangle_count_sparse
from repro.listing.approximate import approximate_triangle_count

from _common import FULL, emit

N = 50_000 if FULL else 15_000
BUDGETS = (1000, 10_000, 100_000)


def test_approximate_counting_tradeoff(benchmark):
    graph = twitter_like_graph(n=N, alpha=1.7)
    rng = np.random.default_rng(4)

    t0 = time.perf_counter()
    exact = triangle_count_sparse(graph)
    t_sparse = time.perf_counter() - t0

    oriented = orient(graph, DescendingDegree())
    t0 = time.perf_counter()
    listed = list_triangles(oriented, "E1", collect=False)
    t_listing = time.perf_counter() - t0
    assert listed.count == exact

    def run():
        rows = []
        for budget in BUDGETS:
            t0 = time.perf_counter()
            est = approximate_triangle_count(graph, budget, rng)
            elapsed = time.perf_counter() - t0
            rows.append((budget, est, elapsed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Wedge sampling vs exact (n={N}, m={graph.m}, "
             f"{exact} triangles)",
             f"{'estimator':>22} {'estimate':>10} {'rel err':>8} "
             f"{'seconds':>8}",
             f"{'sparse matrix (exact)':>22} {exact:>10} {'0.0%':>8} "
             f"{t_sparse:>8.3f}",
             f"{'E1 listing (exact)':>22} {listed.count:>10} "
             f"{'0.0%':>8} {t_listing:>8.3f}"]
    for budget, est, elapsed in rows:
        err = est.triangles / exact - 1.0 if exact else 0.0
        lines.append(f"{'wedges x %d' % budget:>22} "
                     f"{est.triangles:>10.0f} {100 * err:>7.1f}% "
                     f"{elapsed:>8.3f}")
    emit("approximate_counting", "\n".join(lines))

    # the largest budget lands within a few percent, inside its CI
    __, best, __ = rows[-1]
    assert best.triangles == pytest.approx(exact, rel=0.1)
    lo, hi = best.confidence_interval(z=4.0)
    assert lo <= exact <= hi
