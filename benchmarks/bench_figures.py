"""Figure-style artifacts: the paper's curves rendered as ASCII charts.

The paper's printed figures are schematic diagrams, so there is nothing
to regenerate pixel-for-pixel; instead these charts visualize the three
quantitative stories its analysis tells:

1. limit cost vs alpha per (method, optimal map) -- the finiteness
   walls at 4/3, 1.5, 2 appear as curves shooting up and vanishing;
2. the E1/T1 limit ratio vs alpha -- diverging toward alpha = 1.5,
   flattening for light tails (the decision-rule landscape);
3. model error vs n under root vs linear truncation (Table 6 vs 9's
   contrast as a curve).
"""

import math

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, limit_cost
from repro.core.crossover import limit_cost_ratio
from repro.distributions import linear_truncation, root_truncation
from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.harness import SimulationSpec, simulated_vs_model

from _common import FULL, emit

ALPHAS = np.array([1.40, 1.50, 1.60, 1.75, 2.00, 2.40, 3.00])


def test_figure_cost_vs_alpha(benchmark):
    def run():
        curves = {"T1+desc": [], "T2+rr": [], "E1+desc": []}
        for alpha in ALPHAS:
            dist = DiscretePareto(alpha, 30.0 * (alpha - 1.0))
            curves["T1+desc"].append(
                limit_cost(dist, "T1", "descending", eps=1e-4))
            curves["T2+rr"].append(limit_cost(dist, "T2", "rr", eps=1e-4))
            curves["E1+desc"].append(
                limit_cost(dist, "E1", "descending", eps=1e-4))
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = ascii_plot(
        {k: (ALPHAS, v) for k, v in curves.items()},
        logy=True, title="Limit cost vs alpha (log y); curves vanish "
        "left of their finiteness thresholds",
        xlabel="alpha", ylabel="cost")
    emit("figure_cost_vs_alpha", chart)

    # finiteness walls: E1 infinite at 1.5, finite at 1.6; T1 finite
    # everywhere on this grid (threshold 4/3 < 1.4)
    by_alpha = dict(zip(ALPHAS.tolist(), curves["E1+desc"]))
    assert math.isinf(by_alpha[1.50])
    assert math.isfinite(by_alpha[1.60])
    assert all(map(math.isfinite, curves["T1+desc"]))
    # cost decreases in alpha once finite (lighter tails, cheaper)
    t1 = curves["T1+desc"]
    assert t1[-1] < t1[0]


def test_figure_ratio_vs_alpha(benchmark):
    alphas = [1.55, 1.65, 1.80, 2.00, 2.50, 3.00]
    ratios = benchmark.pedantic(
        lambda: [limit_cost_ratio(a) for a in alphas],
        rounds=1, iterations=1)
    chart = ascii_plot(
        {"c(E1,D)/c(T1,D)": (alphas, ratios)},
        logy=True, title="E1/T1 limit-cost ratio vs alpha "
        "(diverges toward the 1.5 wall)",
        xlabel="alpha", ylabel="ratio")
    emit("figure_ratio_vs_alpha", chart)
    assert all(np.diff(ratios) < 0)  # strictly decreasing in alpha
    assert ratios[0] > 3 * ratios[-1]


def test_figure_lemma2_convergence(benchmark):
    """Lemma 2 as a picture: the finite-n q profile hugging J."""
    from repro.core.outdegree import lemma2_profile
    from repro.core.spread import SpreadDistribution

    dist = DiscretePareto(1.7, 21.0).truncate(500)
    spread = SpreadDistribution(dist)
    us = np.linspace(0.02, 0.98, 25)

    def run():
        quantiles = np.asarray(dist.quantile(us), dtype=float)
        return {
            "J(F^-1(u))": np.asarray(spread.cdf(quantiles), dtype=float),
            "q at n=1e3": lemma2_profile(dist, 1000, us),
            "q at n=1e5": lemma2_profile(dist, 100_000, us),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = ascii_plot(
        {k: (us, v) for k, v in curves.items()},
        title="Lemma 2: q_{ceil(un)}(theta_A) -> J(F^-1(u)) "
        "(alpha=1.7, t_n=500)",
        xlabel="u", ylabel="q / J")
    emit("figure_lemma2", chart)
    err_small = np.max(np.abs(curves["q at n=1e3"]
                              - curves["J(F^-1(u))"]))
    err_large = np.max(np.abs(curves["q at n=1e5"]
                              - curves["J(F^-1(u))"]))
    assert err_large <= err_small + 0.02
    assert err_large < 0.2


def test_figure_error_vs_n(benchmark):
    sizes = [1000, 3000, 10_000] if not FULL else [3000, 10_000, 30_000]

    def run():
        rng = np.random.default_rng(8)
        errors = {}
        for name, trunc in [("root", root_truncation),
                            ("linear", linear_truncation)]:
            spec = SimulationSpec(
                base_dist=DiscretePareto(1.7, 21.0), truncation=trunc,
                method="T2", permutation=DescendingDegree(),
                limit_map="descending", n_sequences=3, n_graphs=2)
            errors[name] = [abs(simulated_vs_model(spec, n, rng)[2])
                            for n in sizes]
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = ascii_plot(
        {k: (sizes, [100 * e for e in v]) for k, v in errors.items()},
        title="|model error| (%) vs n: AMRC (root) vs unconstrained "
        "(linear), T2+descending, alpha=1.7",
        xlabel="n", ylabel="|err|%")
    emit("figure_error_vs_n", chart)
    # the unconstrained error dominates the AMRC error at every n
    for root_err, linear_err in zip(errors["root"], errors["linear"]):
        assert linear_err > root_err
