"""Section 6: the optimality grid and the cross-method comparison.

Computes the full (method x map) limit-cost grid at alpha = 2.5 (all
cells finite) via Algorithm 2 and checks Theorems 3-5 and Corollaries
1-3 on it:

* the argmin of each row is the paper's optimal map;
* the argmax is its complement (Corollary 3);
* ``c(T1, xi_D) < c(T2, xi_RR)`` and ``c(E1, xi_D) < c(E4, xi_CRR)``
  (Theorems 4-5 for increasing r);
* ``c(E1, xi) = c(T1, xi) + c(T2, xi)`` cell-by-cell (Prop. 2).
"""

import numpy as np
import pytest

from repro import DiscretePareto
from repro.core.limits import limit_cost_table
from repro.core.optimality import optimal_map, worst_map
from repro.experiments.tables import format_matrix_table

from _common import emit

DIST = DiscretePareto(alpha=2.5, beta=45.0)
MAP_NAMES = ("ascending", "descending", "rr", "crr", "uniform")
METHOD_NAMES = ("T1", "T2", "E1", "E4")

EXPECTED_BEST = {"T1": "descending", "T2": "rr", "E1": "descending",
                 "E4": "crr"}
EXPECTED_WORST = {"T1": "ascending", "T2": "crr", "E1": "ascending",
                  "E4": "rr"}


def test_optimality_grid_reproduction(benchmark):
    table = benchmark.pedantic(
        lambda: limit_cost_table(DIST, methods=METHOD_NAMES,
                                 maps=MAP_NAMES, eps=1e-4,
                                 t_start=1e8, t_max=1e12),
        rounds=1, iterations=1)
    matrix = [[table[m][p] for p in MAP_NAMES] for m in METHOD_NAMES]
    emit("optimality_grid", format_matrix_table(
        "Limit cost grid, alpha=2.5 (Theorems 3-5)",
        list(METHOD_NAMES), list(MAP_NAMES), matrix))

    for method in METHOD_NAMES:
        row = table[method]
        best = min(row, key=row.get)
        worst = max(row, key=row.get)
        assert best == EXPECTED_BEST[method], (method, row)
        assert worst == EXPECTED_WORST[method], (method, row)

    # Theorem 4 and Theorem 5
    assert table["T1"]["descending"] < table["T2"]["rr"]
    assert table["E1"]["descending"] < table["E4"]["crr"]
    # Prop. 2 at the limit level, every map
    for p in MAP_NAMES:
        assert table["E1"][p] == pytest.approx(
            table["T1"][p] + table["T2"][p], rel=1e-6)
    # T2 symmetric in the monotone maps
    assert table["T2"]["ascending"] == pytest.approx(
        table["T2"]["descending"], rel=1e-9)
