"""Table 4 / Proposition 4: the unified cost formula (14) is accurate.

Proposition 4 states that in asymptotically large AMRC graphs every
fundamental method's expected cost collapses to
``(1/n) sum g(d_i(theta)) h(q_i(theta))`` with ``g(x) = x^2 - x``,
``q_i = E[X_i | D_n] / d_i``, and ``h`` from Table 4. The derivation
uses the (near-)binomial structure of the out-degree: conditional on
``q_i``, ``E[X_i^2 - X_i] = g(d_i) q_i^2`` and ``E[X_i Y_i] =
g(d_i) q_i (1 - q_i)``.

We validate it head-on: fix one degree sequence, generate an ensemble of
graphs realizing it, estimate ``q_i`` per label position by averaging
``X_i / d_i``, and compare the ensemble-mean measured cost against (14).
"""

import numpy as np
import pytest

from repro import (
    DescendingDegree,
    DiscretePareto,
    RoundRobin,
    generate_graph,
    orient,
    sample_degree_sequence,
)
from repro.core.costs import per_node_cost
from repro.core.methods import METHODS
from repro.distributions import root_truncation

from _common import FULL, emit

N = 20_000 if FULL else 5000
N_GRAPHS = 12 if FULL else 6


def _ensemble(graphs, perm):
    """Mean measured cost per method + mean q per label position."""
    n = graphs[0].n
    x_sum = np.zeros(n)
    d_ref = None
    costs = {m: [] for m in ("T1", "T2", "E1", "E4")}
    for graph in graphs:
        oriented = orient(graph, perm)
        x_sum += oriented.out_degrees
        d_ref = oriented.degrees.astype(float)
        for m in costs:
            costs[m].append(per_node_cost(m, oriented.out_degrees,
                                          oriented.in_degrees))
    q = np.zeros(n)
    mask = d_ref > 0
    q[mask] = (x_sum[mask] / len(graphs)) / d_ref[mask]
    return {m: float(np.mean(v)) for m, v in costs.items()}, q, d_ref


def test_proposition4_reproduction(benchmark):
    rng = np.random.default_rng(4)
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(N))
    degrees = sample_degree_sequence(dist, N, rng)
    graphs = [generate_graph(degrees, rng) for __ in range(N_GRAPHS)]

    def run():
        out = {}
        for perm, name in [(DescendingDegree(), "descending"),
                           (RoundRobin(), "rr")]:
            measured, q, d = _ensemble(graphs, perm)
            g = d * d - d
            for method in ("T1", "T2", "E1", "E4"):
                unified = float(np.mean(g * METHODS[method].h(q)))
                out[(method, name)] = (measured[method], unified)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Table 4 / Prop. 4: ensemble-mean cost vs unified model "
             f"(14)  (n={N}, {N_GRAPHS} graphs, alpha=1.7, root trunc)",
             f"{'method':>7} {'perm':>11} {'measured':>12} "
             f"{'eq. (14)':>12} {'ratio':>7}"]
    for (method, perm), (measured, unified) in sorted(out.items()):
        lines.append(f"{method:>7} {perm:>11} {measured:>12.2f} "
                     f"{unified:>12.2f} {unified / measured:>7.3f}")
    emit("table04_prop4", "\n".join(lines))

    for (method, perm), (measured, unified) in out.items():
        assert unified == pytest.approx(measured, rel=0.12), (method, perm)
