"""Tables 1-2 and Figures 2/4: cost decompositions of all 18 methods.

Runs every instrumented lister on one heavy-tailed graph and checks its
measured ops against the Table 1/2 decomposition into the three base
formulas (7)-(9) -- the executable version of the paper's taxonomy.
"""

import numpy as np
import pytest

from repro import (
    ALL_METHODS,
    DescendingDegree,
    DiscretePareto,
    generate_graph,
    list_triangles,
    orient,
    sample_degree_sequence,
)
from repro.core.costs import cost_t1, cost_t2, cost_t3
from repro.core.methods import METHODS

from _common import FULL, emit

N = 5000 if FULL else 1500


def _graph():
    rng = np.random.default_rng(5)
    dist = DiscretePareto(1.7, 21.0).truncate(int(N**0.5))
    degrees = sample_degree_sequence(dist, N, rng)
    return generate_graph(degrees, rng)


def test_tables_1_and_2_reproduction(benchmark):
    graph = _graph()
    oriented = orient(graph, DescendingDegree())
    base = {
        "T1": cost_t1(oriented.out_degrees),
        "T2": cost_t2(oriented.out_degrees, oriented.in_degrees),
        "T3": cost_t3(oriented.in_degrees),
    }
    results = {m: list_triangles(oriented, m, collect=False)
               for m in ALL_METHODS}

    lines = [f"Tables 1-2: measured ops vs decomposition "
             f"(n={N}, m={graph.m}, descending order)",
             f"{'method':>7} {'components':>12} {'measured':>12} "
             f"{'formula':>12} {'triangles':>10}"]
    counts = set()
    for name in ALL_METHODS:
        method = METHODS[name]
        expected = sum(base[c] for c in method.components)
        r = results[name]
        counts.add(r.count)
        lines.append(f"{name:>7} {'+'.join(method.components):>12} "
                     f"{r.ops:>12} {int(expected):>12} {r.count:>10}")
        assert r.ops == int(expected), name
    emit("tables01_02", "\n".join(lines))
    assert len(counts) == 1  # every method lists the same triangles

    benchmark.pedantic(
        lambda: list_triangles(oriented, "E1", collect=False),
        rounds=3 if FULL else 1, iterations=1)
