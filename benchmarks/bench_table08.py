"""Table 8: alpha=2.1 under *linear* truncation (still AMRC: E[D^2]<inf).

Paper's claims: with a finite second moment the graphs are
asymptotically constrained even at t_n = n-1; errors fall below 1% by
n = 10^6 (here: stay small at our scale), and the limits are 181.5
(T1+D) and 384.3 (T2+RR). T2+RR is the slowest-converging cell, with a
noticeably positive model error at small n.
"""

import pytest

from repro import DescendingDegree, DiscretePareto, RoundRobin
from repro.distributions import linear_truncation

from _common import emit, run_sim_table

DIST = DiscretePareto(alpha=2.1, beta=33.0)

CELLS = [
    ("T1+D", "T1", DescendingDegree(), "descending"),
    ("T2+RR", "T2", RoundRobin(), "rr"),
]


def test_table08_reproduction(benchmark):
    rows = benchmark.pedantic(
        lambda: run_sim_table(
            "table08",
            "Table 8: cost with alpha=2.1 and linear truncation",
            DIST, linear_truncation, CELLS),
        rounds=1, iterations=1)
    for row in rows[:-1]:
        t1_cell, t2_cell = row.cells
        assert abs(t1_cell[2]) < 0.10, row.n  # T1+D modeled tightly
    # T2+RR converges from above in the paper (error +16.6% at n=1e4,
    # +0.2% at 1e7); at our scale just require a sane magnitude
    for row in rows[:-1]:
        assert abs(row.cells[1][2]) < 0.6, row.n
    limit_row = rows[-1]
    assert limit_row.cells[0][1] == pytest.approx(181.5, rel=5e-3)
    assert limit_row.cells[1][1] == pytest.approx(384.3, rel=5e-3)
