"""Benchmark-suite configuration.

The table reproductions print their output; run pytest with ``-s`` (or
read ``benchmarks/results/*.txt`` afterwards) to see the regenerated
tables inline.
"""

import sys
import pathlib

# make `from _common import ...` robust regardless of invocation dir
sys.path.insert(0, str(pathlib.Path(__file__).parent))
