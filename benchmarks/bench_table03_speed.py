"""Table 3 substitution: primitive speeds in this runtime.

The paper's numbers (Intel i7-3930K, hand-tuned C++/SIMD): hash probing
19M nodes/sec vs scanning intersection 1,801M nodes/sec, a 95x ratio
that drives the T1-vs-E1 hardware tradeoff of section 2.4. We measure
the same two primitives as available here -- Python set probes and
NumPy's vectorized sorted intersection -- and restate the decision rule
with the measured ratio (DESIGN.md records this substitution).
"""

import pytest

from repro.experiments.speed import measure_primitive_speeds

from _common import FULL, emit


def test_table03_reproduction(benchmark):
    result = benchmark.pedantic(
        lambda: measure_primitive_speeds(
            list_size=200_000 if FULL else 50_000, repeats=3),
        rounds=1, iterations=1)
    ratio = result["speed_ratio_numpy_scan_over_hash"]
    lines = [
        "Table 3 (substituted): single-core primitive speed "
        "(million nodes/sec)",
        f"{'primitive':>32} {'this runtime':>14} {'paper (C++/SIMD)':>18}",
        f"{'hash probe (T*/LEI)':>32} "
        f"{result['hash_nodes_per_sec'] / 1e6:>13.1f} {19.0:>18.1f}",
        f"{'scan, pure python':>32} "
        f"{result['scan_python_nodes_per_sec'] / 1e6:>13.1f} "
        f"{'--':>18}",
        f"{'scan, numpy intersect1d (SEI)':>32} "
        f"{result['scan_numpy_nodes_per_sec'] / 1e6:>13.1f} "
        f"{1801.0:>18.1f}",
        "",
        f"speed ratio scan/hash: {ratio:.1f}x here vs 94.8x in the paper",
        f"decision rule: SEI beats hash methods iff its op-count ratio "
        f"w_n < {ratio:.1f}",
    ]
    emit("table03", "\n".join(lines))
    # vectorized scanning beats per-element hashing here too
    assert ratio > 1.0
