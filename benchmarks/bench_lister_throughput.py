"""Implementation throughput of the instrumented listers.

Not a paper table -- an engineering companion to Table 3: how fast this
library's own T1 (hash probing), E1 (two-pointer scanning), and L1
(hash lookup) implementations run per operation in this interpreter.
pytest-benchmark times them on the same oriented graph; the printed
summary converts to operations/second so the section 2.4 decision rule
can be instantiated with *this* runtime's constants end to end.
"""

import time

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, orient
from repro.distributions import root_truncation
from repro.distributions.sampling import sample_degree_sequence
from repro.graphs.generators import generate_graph
from repro.listing import list_triangles

from _common import FULL, emit

N = 10_000 if FULL else 3000


@pytest.fixture(scope="module")
def oriented():
    rng = np.random.default_rng(3)
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(N))
    degrees = sample_degree_sequence(dist, N, rng)
    graph = generate_graph(degrees, rng)
    return orient(graph, DescendingDegree())


@pytest.mark.parametrize("method", ["T1", "T2", "E1", "E4", "L1", "L3"])
def test_lister_throughput(benchmark, oriented, method):
    result = benchmark.pedantic(
        lambda: list_triangles(oriented, method, collect=False),
        rounds=3 if FULL else 2, iterations=1)
    assert result.count > 0


def test_throughput_summary(benchmark, oriented):
    def run():
        rows = []
        for method in ("T1", "T2", "E1", "E4", "L1", "L3"):
            start = time.perf_counter()
            result = list_triangles(oriented, method, collect=False)
            elapsed = time.perf_counter() - start
            rows.append((method, result.ops,
                         result.ops / elapsed if elapsed else 0.0))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Lister throughput in this runtime (n={N}, descending)",
             f"{'method':>7} {'ops':>12} {'ops/sec':>14}"]
    for method, ops, rate in rows:
        lines.append(f"{method:>7} {ops:>12} {rate:>14.3g}")
    emit("lister_throughput", "\n".join(lines))
    assert all(rate > 0 for __, __, rate in rows)
