"""Implementation throughput of the listing engines.

Not a paper table -- an engineering companion to Table 3: how fast
this library's listers run per edge in this interpreter, across all
three engines: the instrumented pure-Python reference, the *pure*
NumPy kernels (``use_native=False``), and the compiled native kernels
of :mod:`repro.engine.native` (count-only, the paper-scale workload;
plus one native full-listing measurement). pytest-benchmark times the
individual methods; the summary test measures every (method, engine)
triple on one oriented graph, prints side-by-side ns/edge columns,
and persists the numbers via :func:`_common.emit` as
``BENCH_lister_throughput.json`` -- both under ``benchmarks/results/``
and as a copy at the repo root (the tracked perf-trajectory location)
-- so future runs and ``repro report compare`` can diff engine
performance for regressions. ``repro bench --native-compare`` runs
the same comparison from the CLI (see
:mod:`repro.engine.benchmark`).

Scale: ``REPRO_BENCH_FULL=1`` runs the acceptance configuration
(``n = 10^5``, where pure NumPy must be >= 5x over python, native
>= 5x over pure NumPy, and the engine as shipped >= 10x over python
on the four fundamental methods); the default is a quick ``n = 3000``
pass with a relaxed native bar.
"""

import pathlib
import shutil

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, orient
from repro.distributions import root_truncation
from repro.distributions.sampling import sample_degree_sequence
from repro.engine import native
from repro.engine.benchmark import native_compare
from repro.graphs.generators import generate_graph
from repro.listing import list_triangles

from _common import FULL, emit

N = 100_000 if FULL else 3000

#: The paper's four fundamental methods (section 2) plus one lookup
#: iterator per probe direction.
METHODS = ("T1", "T2", "E1", "E4", "L1", "L3")
FUNDAMENTAL = ("T1", "T2", "E1", "E4")

ENGINES = ["python", "numpy",
           pytest.param("native",
                        marks=pytest.mark.skipif(
                            not native.available(),
                            reason="no C toolchain"))]


@pytest.fixture(scope="module")
def oriented():
    rng = np.random.default_rng(3)
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(N))
    degrees = sample_degree_sequence(dist, N, rng)
    graph = generate_graph(degrees, rng)
    g = orient(graph, DescendingDegree())
    # warm every engine's caches (hash set / Bloom + uint32 mirrors /
    # native block decomposition)
    g.edge_key_set()
    list_triangles(g, "T1", collect=False, engine="numpy")
    return g


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("method", FUNDAMENTAL)
def test_lister_throughput(benchmark, oriented, method, engine):
    result = benchmark.pedantic(
        lambda: list_triangles(oriented, method, collect=False,
                               engine=engine),
        rounds=3 if FULL else 2, iterations=1)
    assert result.count > 0


def test_throughput_summary(benchmark, oriented):
    text, data = benchmark.pedantic(
        lambda: native_compare(oriented, methods=METHODS),
        rounds=1, iterations=1)
    data["full_scale"] = FULL
    path = emit("BENCH_lister_throughput", text, config=data, data=data)
    # also publish the JSON sidecar at the repo root -- the tracked
    # perf-trajectory location future sessions diff against
    sidecar = path.with_suffix(".json")
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    shutil.copyfile(sidecar, repo_root / sidecar.name)

    for method, cell in data["methods"].items():
        assert cell["python_ns_per_edge"] > 0
        assert cell["numpy_ns_per_edge"] > 0
        if method not in FUNDAMENTAL:
            continue
        if FULL:
            # pure NumPy vs python at n = 10^5. (The historic >= 10x
            # bar was measured against a column that silently included
            # the v1 native count kernel; honest pure NumPy lands at
            # ~5-20x depending on the method's candidate volume.)
            assert cell["speedup_numpy"] >= 5.0, (method, cell)
        if cell.get("native_ns_per_edge") is None:
            continue
        # native vs *pure* NumPy: >= 5x at acceptance scale, and still
        # clearly ahead on the quick pass (small-n fixed overheads)
        bar = 5.0 if FULL else 2.0
        assert cell["speedup_native"] >= bar, (method, cell)
        if FULL:
            # the historic end-to-end bar: python vs the engine as
            # shipped (native-accelerated) stays >= 10x
            assert cell["speedup_numpy"] * cell["speedup_native"] \
                >= 10.0, (method, cell)
