"""Implementation throughput of the listing engines.

Not a paper table -- an engineering companion to Table 3: how fast
this library's listers run per edge in this interpreter, for both the
instrumented pure-Python reference and the vectorized
:mod:`repro.engine` kernels (count-only, the paper-scale workload).
pytest-benchmark times the individual methods; the summary test
measures every (method, engine) pair on one oriented graph, prints
ns/edge with the numpy-over-python speedup, and persists the numbers
via :func:`_common.emit` as ``BENCH_lister_throughput.json`` -- both
under ``benchmarks/results/`` and as a copy at the repo root (the
tracked perf-trajectory location) -- so future runs and ``repro
report compare`` can diff engine performance for regressions.

Scale: ``REPRO_BENCH_FULL=1`` runs the acceptance configuration
(``n = 10^5``, where the numpy engine must be >= 10x on the four
fundamental methods); the default is a quick ``n = 3000`` pass.
"""

import pathlib
import shutil
import time

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, orient
from repro.distributions import root_truncation
from repro.distributions.sampling import sample_degree_sequence
from repro.graphs.generators import generate_graph
from repro.listing import list_triangles
from repro.engine import native

from _common import FULL, emit

N = 100_000 if FULL else 3000

#: The paper's four fundamental methods (section 2) plus one lookup
#: iterator per probe direction.
METHODS = ("T1", "T2", "E1", "E4", "L1", "L3")
FUNDAMENTAL = ("T1", "T2", "E1", "E4")


@pytest.fixture(scope="module")
def oriented():
    rng = np.random.default_rng(3)
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(N))
    degrees = sample_degree_sequence(dist, N, rng)
    graph = generate_graph(degrees, rng)
    g = orient(graph, DescendingDegree())
    # warm both engines' caches (hash set / Bloom + uint32 mirrors)
    g.edge_key_set()
    list_triangles(g, "T1", collect=False, engine="numpy")
    return g


@pytest.mark.parametrize("engine", ["python", "numpy"])
@pytest.mark.parametrize("method", FUNDAMENTAL)
def test_lister_throughput(benchmark, oriented, method, engine):
    result = benchmark.pedantic(
        lambda: list_triangles(oriented, method, collect=False,
                               engine=engine),
        rounds=3 if FULL else 2, iterations=1)
    assert result.count > 0


def test_throughput_summary(benchmark, oriented):
    def run():
        rows = []
        for method in METHODS:
            timings = {}
            counts = {}
            ops = None
            for engine in ("python", "numpy"):
                start = time.perf_counter()
                result = list_triangles(oriented, method,
                                        collect=False, engine=engine)
                timings[engine] = time.perf_counter() - start
                counts[engine] = result.count
                ops = result.ops
            assert counts["python"] == counts["numpy"], method
            rows.append((method, ops, counts["numpy"],
                         timings["python"], timings["numpy"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    m = oriented.m
    lines = [f"Engine throughput (n={N}, m={m}, descending, "
             f"count-only; native={native.available()})",
             f"{'method':>7} {'ops':>12} {'py ns/edge':>11} "
             f"{'np ns/edge':>11} {'speedup':>8}"]
    data = {"n": N, "m": int(m), "native": native.available(),
            "full_scale": FULL, "methods": {}}
    for method, ops, count, t_py, t_np in rows:
        py_ns = t_py / m * 1e9
        np_ns = t_np / m * 1e9
        speedup = t_py / t_np if t_np else float("inf")
        lines.append(f"{method:>7} {ops:>12} {py_ns:>11.1f} "
                     f"{np_ns:>11.1f} {speedup:>7.1f}x")
        data["methods"][method] = {
            "ops": int(ops), "triangles": int(count),
            "python_ns_per_edge": py_ns, "numpy_ns_per_edge": np_ns,
            "speedup": speedup,
        }
    path = emit("BENCH_lister_throughput", "\n".join(lines),
                config=data, data=data)
    # also publish the JSON sidecar at the repo root -- the tracked
    # perf-trajectory location future sessions diff against
    sidecar = path.with_suffix(".json")
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    shutil.copyfile(sidecar, repo_root / sidecar.name)
    for method, __, __, t_py, t_np in rows:
        assert t_np > 0 and t_py > 0
        if FULL and method in FUNDAMENTAL:
            # the PR's acceptance bar at n = 10^5
            assert t_py / t_np >= 10.0, (method, t_py / t_np)
