"""Table 5: model values and computation time, three ways.

Paper setup: T1 + descending order, alpha = 1.5 (beta = 15), linear
truncation, eps = 1e-5. Columns: the continuous model (49), the exact
discrete model (50), and Algorithm 2. The paper's observations we
verify: all three agree to ~2%, the continuous model runs 1.5-2% high,
the exact model's time grows linearly in n while Algorithm 2 stays
sub-second out to n = 1e17.
"""

import time

import pytest

from repro import (
    ContinuousPareto,
    DiscretePareto,
    continuous_cost_model,
    discrete_cost_model,
    fast_cost_model,
)

from _common import FULL, emit

DIST = DiscretePareto(alpha=1.5, beta=15.0)
CONT = ContinuousPareto(alpha=1.5, beta=15.0)

#: Published (value) anchors for the exact model column.
PAPER_EXACT = {10**3: 142.85, 10**4: 241.15, 10**7: 346.92,
               10**9: 354.94, 10**10: 355.79}

EXACT_SIZES = [10**3, 10**4, 10**7]
FAST_SIZES = EXACT_SIZES + [10**9, 10**10, 10**12, 10**14, 10**17]


def _rows():
    rows = []
    for n in FAST_SIZES:
        t = n - 1
        t0 = time.perf_counter()
        cont = continuous_cost_model(CONT, t, "T1", "descending")
        t_cont = time.perf_counter() - t0
        if n in EXACT_SIZES:
            t0 = time.perf_counter()
            exact = discrete_cost_model(DIST.truncate(t), "T1",
                                        "descending")
            t_exact = time.perf_counter() - t0
        else:
            exact, t_exact = None, None
        t0 = time.perf_counter()
        fast = fast_cost_model(DIST.truncate(t), "T1", "descending",
                               eps=1e-5)
        t_fast = time.perf_counter() - t0
        rows.append((n, cont, t_cont, exact, t_exact, fast, t_fast))
    return rows


def test_table05_reproduction(benchmark):
    rows = _rows()
    lines = ["Table 5: T1 + descending, alpha=1.5, linear truncation, "
             "eps=1e-5",
             f"{'n':>8}  {'(49) cont':>10} {'time':>7}  "
             f"{'(50) exact':>10} {'time':>7}  {'Alg 2':>10} {'time':>7}"]
    for n, cont, tc, exact, te, fast, tf in rows:
        exact_s = f"{exact:10.2f} {te:6.2f}s" if exact is not None \
            else f"{'too slow':>10} {'--':>7}"
        lines.append(f"{n:8.0e}  {cont:10.2f} {tc:6.2f}s  {exact_s}  "
                     f"{fast:10.2f} {tf:6.2f}s")
    emit("table05", "\n".join(lines))

    by_n = {n: (cont, exact, fast) for n, cont, __, exact, __, fast, __
            in rows}
    # published anchors reproduce to two decimals
    for n, expected in PAPER_EXACT.items():
        fast = by_n[n][2]
        assert fast == pytest.approx(expected, abs=0.05)
    # the continuous model deviates by the paper's 1.5-2%
    for n in EXACT_SIZES:
        cont, exact, __ = by_n[n]
        assert 1.005 < cont / exact < 1.03
    # Algorithm 2 time stays far below the exact model at n = 1e7
    benchmark.pedantic(
        lambda: fast_cost_model(DIST.truncate(10**14), "T1", "descending",
                                eps=1e-5),
        rounds=3 if FULL else 1, iterations=1)
