"""Table 11: model error under alpha=1.2, linear truncation, w1 vs w2.

Below every finiteness threshold (the asymptotic cost is infinite), the
identity weight w1(x)=x builds an error that *grows* with n, because
(11) over-counts edges delivered to the giant hubs. The capped weight
w2(x)=min(x, sqrt(m)) (eq. (12)) settles into the same growth rate as
the simulations and removes most of the error -- the paper's Table 11.
"""

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, RoundRobin
from repro.core.model import discrete_cost_model
from repro.core.weights import capped_weight, identity_weight
from repro.distributions import linear_truncation
from repro.experiments.harness import SimulationSpec, simulate_cost

from _common import N_GRAPHS, N_SEQUENCES, SIM_SIZES, emit, traced_run

DIST = DiscretePareto(alpha=1.2, beta=6.0)

CELLS = [
    ("T1+D", "T1", DescendingDegree(), "descending"),
    ("T2+D", "T2", DescendingDegree(), "descending"),
    ("T2+RR", "T2", RoundRobin(), "rr"),
]


def _expected_edge_count(n: int) -> float:
    dist_n = DIST.truncate(linear_truncation(n))
    ks = np.arange(1, linear_truncation(n) + 1, dtype=float)
    return n * float(np.sum(ks * dist_n.pmf(ks))) / 2.0


def _run():
    with traced_run("table11", seed=2017):
        return _run_cells()


def _run_cells():
    rng = np.random.default_rng(2017)
    table = {}
    for n in SIM_SIZES:
        dist_n = DIST.truncate(linear_truncation(n))
        w2 = capped_weight(max(np.sqrt(_expected_edge_count(n)), 2.0))
        row = {}
        for label, method, perm, limit_map in CELLS:
            spec = SimulationSpec(
                base_dist=DIST, truncation=linear_truncation,
                method=method, permutation=perm, limit_map=limit_map,
                n_sequences=N_SEQUENCES, n_graphs=N_GRAPHS)
            sim = simulate_cost(spec, n, rng)
            err1 = discrete_cost_model(dist_n, method, limit_map,
                                       identity_weight) / sim - 1.0
            err2 = discrete_cost_model(dist_n, method, limit_map,
                                       w2) / sim - 1.0
            row[label] = (err1, err2)
        table[n] = row
    return table


def test_table11_reproduction(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["Table 11: relative error of (50), alpha=1.2, linear "
             "truncation",
             f"{'n':>7}  " + "  ".join(
                 f"{label + ' w1':>10} {label + ' w2':>10}"
                 for label, *_ in CELLS)]
    for n, row in table.items():
        cells = "  ".join(
            f"{100 * row[label][0]:>9.1f}% {100 * row[label][1]:>9.1f}%"
            for label, *_ in CELLS)
        lines.append(f"{n:>7}  {cells}")
    emit("table11", "\n".join(lines))

    sizes = sorted(table)
    first, last = table[sizes[0]], table[sizes[-1]]
    # w1's T1+D error grows with n (the paper: 38% -> 386%)
    assert last["T1+D"][0] > first["T1+D"][0]
    assert last["T1+D"][0] > 0.10
    # w2's T1+D error is *stable* across n -- the paper's point is not
    # that w2 is unbiased here (its Table 11 shows -54% -> -49%) but
    # that it "settles into a growth rate that is essentially the same
    # as that of simulations" while w1's error keeps climbing
    w2_spread = (max(table[n]["T1+D"][1] for n in sizes)
                 - min(table[n]["T1+D"][1] for n in sizes))
    w1_spread = (max(table[n]["T1+D"][0] for n in sizes)
                 - min(table[n]["T1+D"][0] for n in sizes))
    assert w2_spread < w1_spread
    # w2 shrinks the error outright for the T2 rows (paper: 304% ->
    # 21.6% and 216% -> -3.1% at n = 1e4)
    for label in ("T2+D", "T2+RR"):
        for n in sizes:
            assert abs(table[n][label][1]) < abs(table[n][label][0])
