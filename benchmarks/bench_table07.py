"""Table 7: T2 under descending vs Round-Robin, alpha=1.7, root trunc.

Paper's claims: both cells are modeled within a few percent (AMRC), RR
beats descending at every n (Corollary 2), and the limits are 1307.6
(descending) vs 770.4 (RR).
"""

import pytest

from repro import DescendingDegree, DiscretePareto, RoundRobin
from repro.distributions import root_truncation

from _common import emit, run_sim_table

DIST = DiscretePareto(alpha=1.7, beta=21.0)

CELLS = [
    ("T2+D", "T2", DescendingDegree(), "descending"),
    ("T2+RR", "T2", RoundRobin(), "rr"),
]


def test_table07_reproduction(benchmark):
    rows = benchmark.pedantic(
        lambda: run_sim_table(
            "table07",
            "Table 7: cost with alpha=1.7 and root truncation",
            DIST, root_truncation, CELLS),
        rounds=1, iterations=1)
    for row in rows[:-1]:
        for sim, model, error in row.cells:
            assert abs(error) < 0.12, (row.n, sim, model)
        desc, rr = row.cells
        assert rr[0] < desc[0]  # RR is optimal for T2
    limit_row = rows[-1]
    assert limit_row.cells[0][1] == pytest.approx(1307.6, rel=5e-3)
    assert limit_row.cells[1][1] == pytest.approx(770.4, rel=5e-3)
