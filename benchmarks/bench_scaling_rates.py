"""Eqs. (47)-(48): growth rates of cost below the finiteness thresholds.

Under root truncation with alpha below the threshold, the model cost
grows like ``a_n = n^(2 - 1.5 alpha)`` for T1+descending and
``b_n = n^(1.5 - alpha)`` for E1+descending. We fit the model's log-log
slope over a huge-n grid (Algorithm 2 makes n = 1e13 cheap) and compare
against the predicted exponents, including the paper's two qualitative
findings: T1 grows strictly slower than E1 for alpha in (1, 1.5), and
the rates coincide for alpha < 1 -- the latter exercised via the
truncated model directly since E[D] is infinite there.
"""

import numpy as np
import pytest

from repro import DiscretePareto, fast_cost_model
from repro.core.asymptotics import fit_growth_exponent
from repro.distributions import root_truncation

from _common import emit

NS = [10**10, 10**11, 10**12, 10**13]


def _fitted_slope(alpha: float, method: str) -> float:
    beta = 30.0 * (alpha - 1.0) if alpha > 1.0 else 6.0
    dist = DiscretePareto(alpha, beta)
    costs = [fast_cost_model(dist.truncate(root_truncation(n)), method,
                             "descending", eps=1e-4) for n in NS]
    return fit_growth_exponent(NS, costs)


def test_scaling_rates_reproduction(benchmark):
    cases = [
        ("T1", 1.10, 2 - 1.5 * 1.10),
        ("T1", 1.20, 2 - 1.5 * 1.20),
        ("T1", 1.30, 2 - 1.5 * 1.30),
        ("E1", 1.10, 1.5 - 1.10),
        ("E1", 1.20, 1.5 - 1.20),
        ("E1", 1.40, 1.5 - 1.40),
    ]
    rows = benchmark.pedantic(
        lambda: [(m, a, pred, _fitted_slope(a, m))
                 for m, a, pred in cases],
        rounds=1, iterations=1)
    lines = ["Eqs. (47)-(48): fitted vs predicted growth exponents "
             "(root truncation, model over n = 1e10 .. 1e13)",
             f"{'method':>7} {'alpha':>6} {'predicted':>10} {'fitted':>8}"]
    for m, a, pred, fit in rows:
        lines.append(f"{m:>7} {a:>6.2f} {pred:>10.3f} {fit:>8.3f}")
    emit("scaling_rates", "\n".join(lines))

    for m, a, pred, fit in rows:
        assert fit == pytest.approx(pred, abs=0.06), (m, a)
    # T1 grows strictly slower than E1 for every alpha in (1, 1.5)
    by = {(m, a): fit for m, a, __, fit in rows}
    for a in (1.10, 1.20):
        assert by[("T1", a)] < by[("E1", a)]


def test_same_rate_below_alpha_one(benchmark):
    """For alpha < 1 both methods scale like n^(1 - alpha/2)."""
    alpha = 0.8
    dist = DiscretePareto(alpha, 6.0)

    def fit(method):
        costs = [fast_cost_model(dist.truncate(root_truncation(n)),
                                 method, "descending", eps=1e-4)
                 for n in NS]
        return fit_growth_exponent(NS, costs)

    slopes = benchmark.pedantic(
        lambda: (fit("T1"), fit("E1")), rounds=1, iterations=1)
    predicted = 1.0 - alpha / 2.0
    assert slopes[0] == pytest.approx(predicted, abs=0.06)
    assert slopes[1] == pytest.approx(predicted, abs=0.06)
    assert slopes[0] == pytest.approx(slopes[1], abs=0.02)
