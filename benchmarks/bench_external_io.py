"""External-memory E1: CPU invariance and the O(k m) I/O law.

The paper defers I/O modeling to [17] (sections 2.3, 8); this bench
exercises the substrate that future work presupposes: across partition
counts ``k``, the out-of-core E1's CPU operations are *identical* to
the in-memory run (partitioning never changes what is compared), while
read volume grows linearly in ``k`` -- candidate partition ``c`` is
re-read once per source partition ``s >= c``.
"""

import numpy as np
import pytest

from repro import DescendingDegree, list_triangles, orient
from repro.experiments.twitter import twitter_like_graph
from repro.external import external_e1

from _common import FULL, emit

N = 30_000 if FULL else 8000
KS = (1, 2, 4, 8, 16)


def test_external_io_reproduction(benchmark):
    graph = twitter_like_graph(n=N, alpha=1.7)
    oriented = orient(graph, DescendingDegree())
    reference = list_triangles(oriented, "E1", collect=False)

    def run():
        return [(k, *external_e1(oriented, k, collect=False))
                for k in KS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"External-memory E1 (n={N}, m={graph.m}, descending)",
             f"{'k':>4} {'CPU ops':>12} {'triangles':>10} "
             f"{'loads':>6} {'bytes read':>12}"]
    for k, result, io in rows:
        lines.append(f"{k:>4} {result.ops:>12} {result.count:>10} "
                     f"{io.loads:>6} {io.bytes_read:>12}")
    emit("external_io", "\n".join(lines))

    for k, result, io in rows:
        assert result.ops == reference.ops       # CPU cost invariant
        assert result.count == reference.count   # same triangles
    bytes_by_k = {k: io.bytes_read for k, __, io in rows}
    # roughly linear I/O growth: k=16 reads ~8x what k=2 does
    assert bytes_by_k[16] > 4 * bytes_by_k[2]
    assert bytes_by_k[1] < bytes_by_k[2]
