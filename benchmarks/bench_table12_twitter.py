"""Table 12: total CPU operations per (method, permutation).

Paper: the Twitter follower graph (41M nodes / 1.2B edges). Here: a
synthetic heavy-tailed stand-in (DESIGN.md documents the substitution);
every assertion below is one of the *relative* claims the paper draws
from its Table 12, all of which are scale-free properties of the degree
distribution:

* gray cells: theta_D optimal for T1 and E1, RR for T2, CRR for E4;
* ``E1(theta_D) ~= 2 x T2(theta_RR)``;
* T2 identical under ascending/descending (h is symmetric);
* E4 nearly flat across permutations, far above E1's best;
* the degenerate orientation is within ~10% of theta_D for T1 but
  does not help the other methods.
"""

import numpy as np
import pytest

from repro.experiments.tables import format_matrix_table
from repro.experiments.twitter import (
    PERMUTATION_ORDER,
    analyze_cost_matrix,
    cost_matrix,
    twitter_like_graph,
)

from _common import FULL, emit, traced_run

N = 100_000 if FULL else 30_000
METHODS = ("T1", "T2", "E1", "E4")


def test_table12_reproduction(benchmark):
    graph = twitter_like_graph(n=N, alpha=1.7)

    def run():
        with traced_run("table12", n=N, alpha=1.7):
            return cost_matrix(graph)

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("table12", format_matrix_table(
        f"Table 12: CPU operations on Twitter-like graph "
        f"(n={N}, m={graph.m})",
        list(METHODS), list(PERMUTATION_ORDER), matrix))

    report = analyze_cost_matrix(matrix)
    per = report["per_method"]
    assert per["T1"]["best"] == "descending"
    assert per["E1"]["best"] == "descending"
    assert per["T2"]["best"] == "rr"
    assert per["E4"]["best"] == "crr"
    # worst permutations are the complements (Corollary 3)
    assert per["T1"]["worst"] == "ascending"
    assert per["T2"]["worst"] == "crr"
    assert per["E1"]["worst"] == "ascending"
    assert per["E4"]["worst"] in ("rr", "descending", "ascending")

    assert report["e1_desc_over_t2_rr"] == pytest.approx(2.0, abs=0.15)
    assert report["e4_best_over_e1_desc"] > 2.0  # E4 never competitive

    perms = list(PERMUTATION_ORDER)
    t2 = matrix[list(METHODS).index("T2")]
    assert t2[perms.index("descending")] == pytest.approx(
        t2[perms.index("ascending")])
    # degenerate ~ theta_D for T1 (paper: 10% better on Twitter)
    t1 = matrix[list(METHODS).index("T1")]
    assert t1[perms.index("degenerate")] == pytest.approx(
        t1[perms.index("descending")], rel=0.3)
