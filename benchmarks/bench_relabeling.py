"""Section 2.4 / 7.5: what skipping a preprocessing step costs.

The paper's Twitter commentary quantifies partial preprocessing:
"keeping the graph non-relabeled would have doubled the cost of T1 and
made it worse than T2. This also would have caused a 29% increase for
E1 and 100% for E4." We regenerate those penalties on the synthetic
stand-in, plus the relabel-only overheads (the ``zeta`` binary-search
taxes).
"""

import numpy as np
import pytest

from repro import DescendingDegree, RoundRobin, orient
from repro.core.costs import total_cost
from repro.experiments.twitter import twitter_like_graph
from repro.listing.partial_preprocessing import (
    orientation_only_cost,
    orientation_only_penalty,
    relabel_only_extra_cost,
    zeta_overhead,
)

from _common import FULL, emit

N = 100_000 if FULL else 30_000


def test_partial_preprocessing_reproduction(benchmark):
    graph = twitter_like_graph(n=N, alpha=1.7)

    def run():
        desc = orient(graph, DescendingDegree())
        rr = orient(graph, RoundRobin())
        rows = {}
        for method in ("T1", "T2", "E1", "E4"):
            full = total_cost(method, desc.out_degrees, desc.in_degrees)
            no_relabel = orientation_only_cost(
                method, desc.out_degrees, desc.in_degrees)
            rows[method] = (full, no_relabel, no_relabel / full)
        extras = {m: relabel_only_extra_cost(m, desc)
                  for m in ("T1", "T2", "E1", "E4")}
        t2_rr = total_cost("T2", rr.out_degrees, rr.in_degrees)
        return rows, extras, t2_rr, zeta_overhead(desc.degrees)

    rows, extras, t2_rr, zeta = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    lines = [f"Section 2.4/7.5: partial preprocessing penalties "
             f"(Twitter-like, n={N}, descending order)",
             f"{'method':>7} {'full ops':>12} {'no-relabel ops':>15} "
             f"{'penalty':>8} {'relabel-only extra':>19}"]
    for method, (full, nr, pen) in rows.items():
        lines.append(f"{method:>7} {full:>12.3e} {nr:>15.3e} "
                     f"{pen:>7.2f}x {extras[method]:>19.3e}")
    lines.append(f"\nzeta = sum log2 d_i = {zeta:.3e}")
    lines.append(f"T2 + RR (full preprocessing) = {t2_rr:.3e}")
    emit("relabeling_penalties", "\n".join(lines))

    # the paper's exact claims: T1 doubles, T2 unchanged, E4 doubles
    assert rows["T1"][2] == pytest.approx(2.0)
    assert rows["T2"][2] == pytest.approx(1.0)
    assert rows["E4"][2] == pytest.approx(2.0)
    # E1 increases by ~29% on Twitter; the exact value depends on the
    # T1/T2 split, so assert the qualitative band
    assert 1.1 < rows["E1"][2] < 1.6
    # non-relabeled T1 loses to (fully preprocessed) T2 + RR
    assert rows["T1"][1] > t2_rr
    # relabel-only: T1 free, T2 pays zeta, E4 pays per-edge searches
    assert extras["T1"] == 0.0
    assert extras["T2"] == pytest.approx(zeta)
    assert extras["E4"] > extras["T2"]
