"""Ablation: the weight cap ``a`` in ``w(x) = min(x, a)`` (eq. (12)).

Table 11 compares only the two endpoints ``w1(x) = x`` and
``w2(x) = min(x, sqrt(m))``; this ablation sweeps the cap to show the
paper's choice is no accident: at alpha = 1.2 under linear truncation,
the model error of T1+descending is a U-shaped function of ``a`` whose
basin sits near ``sqrt(m)``, and the identity weight (``a = inf``) is
the worst cap of all.
"""

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto
from repro.core.model import discrete_cost_model
from repro.core.weights import capped_weight, identity_weight
from repro.distributions import linear_truncation
from repro.experiments.harness import SimulationSpec, simulate_cost

from _common import FULL, emit

N = 10_000 if FULL else 3000
DIST = DiscretePareto(1.2, 6.0)


def test_weight_cap_ablation(benchmark):
    def run():
        rng = np.random.default_rng(11)
        t_n = linear_truncation(N)
        dist_n = DIST.truncate(t_n)
        ks = np.arange(1, t_n + 1, dtype=float)
        m_expected = N * float(np.sum(ks * dist_n.pmf(ks))) / 2.0
        sqrt_m = float(np.sqrt(m_expected))
        spec = SimulationSpec(
            base_dist=DIST, truncation=linear_truncation, method="T1",
            permutation=DescendingDegree(), limit_map="descending",
            n_sequences=6 if FULL else 4, n_graphs=4 if FULL else 2)
        sim = simulate_cost(spec, N, rng)
        caps = [sqrt_m / 8, sqrt_m / 2, sqrt_m, 4 * sqrt_m, 32 * sqrt_m]
        rows = []
        for cap in caps:
            model = discrete_cost_model(dist_n, "T1", "descending",
                                        capped_weight(cap))
            rows.append((cap / sqrt_m, model / sim - 1.0))
        identity_err = discrete_cost_model(
            dist_n, "T1", "descending", identity_weight) / sim - 1.0
        return rows, identity_err, sqrt_m

    rows, identity_err, sqrt_m = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    lines = [f"Weight-cap ablation: T1+descending, alpha=1.2, linear "
             f"truncation, n={N} (sqrt(m) = {sqrt_m:.0f})",
             f"{'cap / sqrt(m)':>14} {'model error':>12}"]
    for ratio, err in rows:
        lines.append(f"{ratio:>14.3f} {100 * err:>11.1f}%")
    lines.append(f"{'inf (w1)':>14} {100 * identity_err:>11.1f}%")
    emit("weight_ablation", "\n".join(lines))

    errors = dict(rows)
    # the paper's sqrt(m) cap beats the identity weight decisively
    assert abs(errors[1.0]) < abs(identity_err)
    # ... and beats caps an order of magnitude away on either side
    assert abs(errors[1.0]) <= abs(errors[32.0]) + 0.02
    assert abs(errors[1.0]) <= abs(errors[0.125]) + 0.02