"""Planner-vs-oracle regret over the committed graph-family suite.

Runs :func:`repro.planner.regret.run_regret_suite` -- the planner
prices candidates from the degree distribution alone, the oracle
prices the same graph exactly under every admissible orientation
(including the structure-dependent degenerate ordering the model
cannot see) -- and asserts the headline guarantee: median regret of
the planner's pick stays within 10% of the oracle optimum.

Artifacts: the regret table under ``benchmarks/results/`` plus the
``BENCH_planner_regret.json`` sidecar copied to the repo root (the
tracked trajectory future sessions diff), and a ``runs.jsonl`` record
whose ``regret_rows`` become ``case:<label>`` cells for
``repro report compare`` -- the CI gate against
``benchmarks/baselines/planner_regret.json``.

Scale: ``REPRO_BENCH_FULL=1`` grows the graphs from n=400 to n=2000.
Everything is seeded and priced in operation counts, so the cells are
deterministic for a fixed scale.
"""

import math
import pathlib
import shutil

from repro.planner import (default_suite, format_regret_table,
                           regret_summary, run_regret_suite)

from _common import FULL, emit, traced_run

N = 2000 if FULL else 400
SEED = 2017

#: The acceptance bound: median planner-vs-oracle regret <= 10%.
MEDIAN_BOUND = 0.10


def test_planner_regret(benchmark):
    cases = default_suite(n=N)
    with traced_run("planner_regret", cases=len(cases), n=N):
        rows = benchmark.pedantic(
            lambda: run_regret_suite(cases, seed=SEED),
            rounds=1, iterations=1)
    summary = regret_summary(rows)
    text = (f"Planner-vs-oracle regret (n={N}, seed={SEED}, "
            f"ops-priced oracle)\n" + format_regret_table(rows))
    data = {"n": N, "seed": SEED, "full_scale": FULL,
            "summary": summary, "rows": rows}
    path = emit("BENCH_planner_regret", text,
                config={"n": N, "seed": SEED, "full_scale": FULL,
                        "regret_rows": rows, **summary},
                data=data)
    # repo-root copy: the tracked perf-trajectory location
    sidecar = path.with_suffix(".json")
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    shutil.copyfile(sidecar, repo_root / sidecar.name)

    assert summary["cases"] == len(cases)
    assert summary["median_regret"] <= MEDIAN_BOUND, summary
    # the Pareto sweep spans the paper's regimes; on every Pareto case
    # the planner's pick must stay within 25% of the oracle optimum
    for row in rows:
        if row["family"] == "pareto":
            assert math.isfinite(row["regret"]), row
            assert row["regret"] <= 0.25, row
    # zero-cost edge cases must not produce spurious regret
    by_label = {row["label"]: row for row in rows}
    assert by_label["star"]["regret"] == 0.0
    assert by_label["complete"]["regret"] == 0.0
